package exp

import (
	"math"

	"github.com/xylem-sim/xylem/internal/stack"
)

// RefreshRow quantifies the DRAM refresh-rate consequence of stack
// temperature for one application and scheme (§7.5 of the paper: the
// refresh period is 64 ms at 85 °C and halves for every 10 °C above; the
// paper notes Xylem keeps refresh power flat while boosting frequency and
// defers the quantitative study to Smart Refresh [19] and Loi et al.
// [37] — this reproduction includes it).
type RefreshRow struct {
	App    string
	Scheme stack.SchemeKind
	// DRAM0HotC is the bottom (hottest) memory die's hotspot at the base
	// frequency.
	DRAM0HotC float64
	// RefreshScale is the JEDEC refresh-rate multiplier at that
	// temperature (1 = nominal 64 ms period).
	RefreshScale float64
	// RefreshW is the whole stack's refresh power at that rate.
	RefreshW float64
}

// refreshScaleAt applies the JEDEC extended-range rule.
func refreshScaleAt(tempC float64) float64 {
	scale := 1.0
	for t := tempC; t > 85; t -= 10 {
		scale *= 2
	}
	return scale
}

// RefreshStudy evaluates each selected app on base/bank/banke at the base
// frequency and reports the refresh-rate multiplier implied by the
// hottest memory die's temperature, plus the resulting refresh power.
func (r *Runner) RefreshStudy() ([]RefreshRow, Table, error) {
	apps, err := r.apps()
	if err != nil {
		return nil, Table{}, err
	}
	baseF := r.Sys.Cfg.BaseGHz
	dramCfg := r.Sys.Ev.SimCfg.DRAM
	ranks := float64(r.Sys.Cfg.Stack.NumDRAMDies * dramCfg.Channels)
	nominalRefreshHz := ranks / (dramCfg.TREFI * 1e-9)

	var rows []RefreshRow
	for _, app := range apps {
		for _, k := range []stack.SchemeKind{stack.Base, stack.Bank, stack.BankE} {
			o, err := r.Sys.EvaluateUniform(k, app, baseF)
			if err != nil {
				return nil, Table{}, err
			}
			scale := refreshScaleAt(o.DRAM0HotC)
			rows = append(rows, RefreshRow{
				App:          app.Name,
				Scheme:       k,
				DRAM0HotC:    o.DRAM0HotC,
				RefreshScale: scale,
				RefreshW:     nominalRefreshHz * scale * r.Sys.Ev.Power.DRAMRefreshNJ * 1e-9,
			})
		}
	}

	t := Table{
		Title:  "Refresh study (§7.5): DRAM temperature vs refresh rate at 2.4 GHz",
		Header: []string{"app", "scheme", "DRAM °C", "refresh ×", "refresh W"},
	}
	worst := 1.0
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.App, row.Scheme.String(), f1(row.DRAM0HotC),
			f1(row.RefreshScale), f2(row.RefreshW),
		})
		worst = math.Max(worst, row.RefreshScale)
	}
	t.Notes = append(t.Notes,
		"JEDEC extended range: the 64 ms refresh period halves per 10 °C above 85 °C",
		"Xylem's cooling avoids refresh-rate doubling that base would otherwise incur on hot apps")
	_ = worst
	return rows, t, nil
}
