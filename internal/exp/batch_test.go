package exp

import (
	"testing"
)

func TestBatchPartition(t *testing.T) {
	cases := []struct {
		n, w int
		want [][2]int
	}{
		{0, 4, nil},
		{1, 4, [][2]int{{0, 1}}},
		{4, 4, [][2]int{{0, 4}}},
		{5, 4, [][2]int{{0, 4}, {4, 5}}},
		{7, 3, [][2]int{{0, 3}, {3, 6}, {6, 7}}},
		{3, 0, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := batchPartition(c.n, c.w)
		if len(got) != len(c.want) {
			t.Errorf("batchPartition(%d,%d) = %v, want %v", c.n, c.w, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("batchPartition(%d,%d)[%d] = %v, want %v", c.n, c.w, i, got[i], c.want[i])
			}
		}
	}
}

// The batched figure drivers must reproduce the per-point run byte for
// byte: every batched thermal column equals its per-point solve to the
// last bit, batch membership is a pure function of the point list, and
// the assembled sweeps land in serial order — so tables and CSVs are
// identical at every BatchWidth and worker count.
func TestFiguresBatchWidthByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("several full quick sweeps")
	}
	if raceEnabled {
		t.Skip("too slow under the race detector")
	}
	run := func(width, workers int) (string, string, string) {
		t.Helper()
		o := QuickOptions()
		o.BatchWidth = width
		o.Workers = workers
		r, err := NewRunner(o)
		if err != nil {
			t.Fatal(err)
		}
		_, t7, err := r.Figure7()
		if err != nil {
			t.Fatal(err)
		}
		_, t8, err := r.Figure8()
		if err != nil {
			t.Fatal(err)
		}
		_, t14, err := r.Figure14()
		if err != nil {
			t.Fatal(err)
		}
		return t7.String(), t8.String(), t14.String()
	}
	base7, base8, base14 := run(0, 1)
	for _, c := range []struct{ width, workers int }{{2, 1}, {4, 1}, {4, 8}} {
		g7, g8, g14 := run(c.width, c.workers)
		if g7 != base7 {
			t.Errorf("width=%d workers=%d: Figure 7 table differs from per-point run\n--- base ---\n%s\n--- batched ---\n%s",
				c.width, c.workers, base7, g7)
		}
		if g8 != base8 {
			t.Errorf("width=%d workers=%d: Figure 8 table differs from per-point run\n--- base ---\n%s\n--- batched ---\n%s",
				c.width, c.workers, base8, g8)
		}
		if g14 != base14 {
			t.Errorf("width=%d workers=%d: Figure 14 table differs from per-point run\n--- base ---\n%s\n--- batched ---\n%s",
				c.width, c.workers, base14, g14)
		}
	}
}
