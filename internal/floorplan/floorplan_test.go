package floorplan

import (
	"math"
	"strings"
	"testing"

	"github.com/xylem-sim/xylem/internal/geom"
)

func TestProcDieBuilds(t *testing.T) {
	fp, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.Area() / 1e-6; math.Abs(got-64) > 1e-9 {
		t.Fatalf("proc die area = %.3f mm², want 64", got)
	}
	// Eight cores, each with all twelve roles.
	for c := 0; c < 8; c++ {
		blocks := fp.CoreBlocks(c)
		if len(blocks) != len(CoreRoles) {
			t.Fatalf("core %d has %d blocks, want %d", c, len(blocks), len(CoreRoles))
		}
		seen := map[BlockRole]bool{}
		for _, b := range blocks {
			seen[b.Role] = true
		}
		for _, r := range CoreRoles {
			if !seen[r] {
				t.Fatalf("core %d missing role %s", c, r)
			}
		}
	}
	if _, ok := fp.Find("tsvbus"); !ok {
		t.Fatal("no TSV bus block")
	}
	for i := 0; i < 4; i++ {
		if _, ok := fp.Find("mc" + string(rune('0'+i))); !ok {
			t.Fatalf("missing memory controller %d", i)
		}
	}
}

// The paper's λ-aware techniques rely on inner cores (2,3,6,7 in the
// paper's 1-based numbering) being, on average, closer to the die centre
// than outer cores.
func TestInnerCoresAreInner(t *testing.T) {
	fp, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	centreX := fp.Width / 2
	for _, in := range InnerCores {
		for _, out := range OuterCores {
			di := math.Abs(fp.CoreRect(in).Center().X - centreX)
			do := math.Abs(fp.CoreRect(out).Center().X - centreX)
			if di >= do {
				t.Fatalf("inner core %d (|dx|=%.3g) not nearer centre than outer core %d (|dx|=%.3g)",
					in, di, out, do)
			}
		}
	}
}

// Hotspot separation (§6.3): the FPUs of any two cores must be spatially
// separated — at least a core-width apart within a row, and the two core
// rows' execution clusters must sit far apart across the LLC stripe.
func TestFPUsSpatiallySeparated(t *testing.T) {
	fp, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	fpus := make([]Block, 8)
	for c := 0; c < 8; c++ {
		for _, b := range fp.CoreBlocks(c) {
			if b.Role == RoleFPU {
				fpus[c] = b
			}
		}
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			d := fpus[i].Rect.Dist(fpus[j].Rect)
			if d < 1.2*geom.Millimetre {
				t.Fatalf("FPUs of cores %d and %d only %.2f mm apart", i, j, d/geom.Millimetre)
			}
		}
	}
	// Across rows: cores 0 and 4 are vertically aligned.
	if d := math.Abs(fpus[0].Rect.Center().Y - fpus[4].Rect.Center().Y); d < 4*geom.Millimetre {
		t.Fatalf("row-to-row FPU separation only %.2f mm", d/geom.Millimetre)
	}
}

func TestProcTSVBusAtDieCentre(t *testing.T) {
	fp, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	bus, _ := fp.Find("tsvbus")
	c := bus.Rect.Center()
	if math.Abs(c.X-fp.Width/2) > 1e-12 || math.Abs(c.Y-fp.Height/2) > 1e-12 {
		t.Fatalf("TSV bus centre at (%.4g, %.4g), want die centre", c.X, c.Y)
	}
}

func TestDRAMSliceBuilds(t *testing.T) {
	fp, sg, err := BuildDRAMSlice(DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	banks := 0
	for _, b := range fp.Blocks {
		if b.Kind == UnitDRAMBank {
			banks++
		}
	}
	if banks != 16 {
		t.Fatalf("slice has %d banks, want 16 (4 ranks x 4 banks)", banks)
	}
	// Every channel owns exactly 4 banks.
	for ch := 0; ch < 4; ch++ {
		for bk := 0; bk < 4; bk++ {
			name := "bank_ch" + string(rune('0'+ch)) + "b" + string(rune('0'+bk))
			if _, ok := fp.Find(name); !ok {
				t.Fatalf("missing %s", name)
			}
		}
	}
	if _, ok := fp.Find("tsvbus"); !ok {
		t.Fatal("no TSV bus")
	}
	// Geometry: strip centres must be strictly increasing and inside the die.
	prev := -1.0
	for _, y := range sg.HStripCentres {
		if y <= prev || y < 0 || y > fp.Height {
			t.Fatalf("bad horizontal strip centres %v", sg.HStripCentres)
		}
		prev = y
	}
	prev = -1.0
	for _, x := range sg.VStripCentres {
		if x <= prev || x < 0 || x > fp.Width {
			t.Fatalf("bad vertical strip centres %v", sg.VStripCentres)
		}
		prev = x
	}
	// The centre strip rect must contain the TSV bus.
	bus, _ := fp.Find("tsvbus")
	if bus.Rect.Intersect(sg.CentreStripRect()).Area() < bus.Rect.Area()*0.999 {
		t.Fatal("TSV bus not inside the centre strip")
	}
}

// Both dies must share the same TSV-bus location so the stack's buses
// align vertically.
func TestBusesAlignAcrossDies(t *testing.T) {
	proc, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	dram, _, err := BuildDRAMSlice(DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := proc.Find("tsvbus")
	db, _ := dram.Find("tsvbus")
	if pb.Rect != db.Rect {
		t.Fatalf("bus rects differ: %v vs %v", pb.Rect, db.Rect)
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	blocks := []Block{
		{Name: "a", Rect: geom.NewRect(0, 0, 1, 1)},
		{Name: "b", Rect: geom.NewRect(0.5, 0, 1, 1)},
	}
	_, err := newFloorplan("bad", 1.5, 1, blocks)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap not rejected: %v", err)
	}
}

func TestValidateRejectsCoverageGap(t *testing.T) {
	blocks := []Block{{Name: "a", Rect: geom.NewRect(0, 0, 1, 1)}}
	_, err := newFloorplan("bad", 2, 1, blocks)
	if err == nil || !strings.Contains(err.Error(), "cover") {
		t.Fatalf("gap not rejected: %v", err)
	}
}

func TestValidateRejectsOutOfDie(t *testing.T) {
	blocks := []Block{{Name: "a", Rect: geom.NewRect(0, 0, 2, 1)}}
	_, err := newFloorplan("bad", 1, 1, blocks)
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-die not rejected: %v", err)
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	blocks := []Block{
		{Name: "a", Rect: geom.NewRect(0, 0, 1, 1)},
		{Name: "a", Rect: geom.NewRect(1, 0, 1, 1)},
	}
	_, err := newFloorplan("bad", 2, 1, blocks)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
}

func TestCoreRectBoundsBlocks(t *testing.T) {
	fp, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		r := fp.CoreRect(c)
		for _, b := range fp.CoreBlocks(c) {
			if b.Rect.Intersect(r).Area() < b.Rect.Area()*0.999 {
				t.Fatalf("core %d block %s outside CoreRect", c, b.Name)
			}
		}
		// A quarter of the die width, one core-row tall.
		if math.Abs(r.W()-fp.Width/4) > 1e-12 {
			t.Fatalf("core %d width %.4g, want %.4g", c, r.W(), fp.Width/4)
		}
	}
}

func TestUnitKindStrings(t *testing.T) {
	kinds := []UnitKind{UnitOther, UnitCoreBlock, UnitLLC, UnitMemCtrl, UnitTSVBus, UnitDRAMBank, UnitDRAMPeriph}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
}
