package floorplan

import (
	"math"
	"math/rand"
	"testing"

	"github.com/xylem-sim/xylem/internal/geom"
)

func TestLayoutTreeSimple(t *testing.T) {
	// Two blocks side by side, 1:3 area split.
	tree := VSplit(
		Leaf("small", UnitOther, 0.25),
		Leaf("big", UnitOther, 0.75),
	)
	fp, err := LayoutTree("demo", tree, 8e-3, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := fp.Find("small")
	big, _ := fp.Find("big")
	if math.Abs(small.Rect.W()-2e-3) > 1e-12 || math.Abs(big.Rect.W()-6e-3) > 1e-12 {
		t.Fatalf("widths %g / %g", small.Rect.W(), big.Rect.W())
	}
	if small.Rect.H() != 4e-3 || big.Rect.H() != 4e-3 {
		t.Fatal("vertical cut should preserve full height")
	}
}

func TestLayoutTreeNested(t *testing.T) {
	// A core-like layout: cache stripe under an execution cluster.
	tree := HSplit(
		Leaf("l2", UnitCoreBlock, 0.4),
		VSplit(
			CoreLeaf(0, RoleIntALU, 0.2),
			CoreLeaf(0, RoleFPU, 0.3),
			CoreLeaf(0, RoleFPRF, 0.1),
		),
	)
	fp, err := LayoutTree("core", tree, 2e-3, 2.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Blocks) != 4 {
		t.Fatalf("%d blocks", len(fp.Blocks))
	}
	fpu, ok := fp.Find("c0.fpu")
	if !ok {
		t.Fatal("no FPU block")
	}
	// FPU has 0.3 of the die area.
	want := 0.3 * 2e-3 * 2.5e-3
	if math.Abs(fpu.Rect.Area()-want) > 1e-15 {
		t.Fatalf("FPU area %g, want %g", fpu.Rect.Area(), want)
	}
	// Upper row: FPU sits above the L2 stripe.
	l2, _ := fp.Find("l2")
	if fpu.Rect.Min.Y < l2.Rect.Max.Y-1e-12 {
		t.Fatal("execution cluster not above the cache stripe")
	}
}

func TestLayoutTreeValidation(t *testing.T) {
	if _, err := LayoutTree("x", nil, 1, 1); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := LayoutTree("x", Leaf("", UnitOther, 1), 1, 1); err == nil {
		t.Fatal("unnamed leaf accepted")
	}
	if _, err := LayoutTree("x", Leaf("a", UnitOther, 0.5), 1, 1); err == nil {
		t.Fatal("fractions != 1 accepted")
	}
	if _, err := LayoutTree("x", VSplit(Leaf("a", UnitOther, 1)), 1, 1); err == nil {
		t.Fatal("single-child cut accepted")
	}
	bad := Leaf("a", UnitOther, 1)
	bad.Children = []*TreeNode{Leaf("b", UnitOther, 0)}
	if _, err := LayoutTree("x", bad, 1, 1); err == nil {
		t.Fatal("leaf with children accepted")
	}
}

// Property: any random valid slicing tree tiles the die exactly (the
// floorplan validator enforces coverage and disjointness) and every
// block's area equals its fraction of the die.
func TestLayoutTreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		leaves := 0
		var build func(depth int, frac float64) *TreeNode
		build = func(depth int, frac float64) *TreeNode {
			if depth == 0 || rng.Float64() < 0.35 {
				leaves++
				return Leaf(blockName(leaves), UnitOther, frac)
			}
			n := 2 + rng.Intn(3)
			shares := make([]float64, n)
			sum := 0.0
			for i := range shares {
				shares[i] = 0.2 + rng.Float64()
				sum += shares[i]
			}
			var children []*TreeNode
			for i := range shares {
				children = append(children, build(depth-1, frac*shares[i]/sum))
			}
			if rng.Intn(2) == 0 {
				return VSplit(children...)
			}
			return HSplit(children...)
		}
		tree := build(3, 1.0)
		if tree.Cut == CutNone {
			continue // degenerate single-leaf tree: still fine but dull
		}
		fp, err := LayoutTree("prop", tree, 8e-3, 8e-3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Per-leaf area check.
		fracs := map[string]float64{}
		var collect func(n *TreeNode)
		collect = func(n *TreeNode) {
			if n.Cut == CutNone {
				fracs[n.Name] = n.AreaFrac
				return
			}
			for _, c := range n.Children {
				collect(c)
			}
		}
		collect(tree)
		die := fp.Area()
		for name, frac := range fracs {
			b, ok := fp.Find(name)
			if !ok {
				t.Fatalf("trial %d: block %s missing", trial, name)
			}
			if math.Abs(b.Rect.Area()-frac*die) > 1e-9*die {
				t.Fatalf("trial %d: %s area %.3g, want %.3g", trial, name, b.Rect.Area(), frac*die)
			}
		}
	}
}

func blockName(i int) string {
	return "blk" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestAspectHelpers(t *testing.T) {
	if ar := AspectRatio(geom.NewRect(0, 0, 4, 1)); ar != 4 {
		t.Fatalf("AspectRatio = %g", ar)
	}
	if ar := AspectRatio(geom.NewRect(0, 0, 1, 4)); ar != 4 {
		t.Fatal("aspect must be orientation-free")
	}
	fp, err := BuildProcDie(DefaultProcConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wa := WorstAspect(fp); wa > 25 {
		t.Fatalf("proc die worst aspect %g implausible", wa)
	}
}
