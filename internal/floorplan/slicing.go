package floorplan

import (
	"fmt"
	"math"

	"github.com/xylem-sim/xylem/internal/geom"
)

// Slicing-tree floorplanning, in the style of ArchFP [17]: a floorplan is
// a recursive partition of a rectangle, where each internal node cuts its
// rectangle horizontally or vertically and distributes the pieces to its
// children in proportion to their area demands. The fixed layouts in
// procdie.go and dramdie.go cover the paper's evaluation; this engine
// lets users describe their own dies declaratively and is exercised by
// the custom-floorplan tests.

// CutDir selects how an internal tree node divides its rectangle.
type CutDir int

const (
	// CutNone marks a leaf.
	CutNone CutDir = iota
	// CutVertical slices the rectangle with vertical lines: children are
	// laid out left-to-right.
	CutVertical
	// CutHorizontal slices with horizontal lines: children stack
	// bottom-to-top.
	CutHorizontal
)

// TreeNode is one node of a slicing tree. Leaves describe blocks;
// internal nodes describe cuts. A leaf's AreaFrac is its share of the
// *root* rectangle's area; the tree is valid when the leaf fractions sum
// to 1.
type TreeNode struct {
	// Leaf fields (ignored on internal nodes).
	Name     string
	Kind     UnitKind
	Role     BlockRole
	Core     int
	AreaFrac float64

	// Internal fields.
	Cut      CutDir
	Children []*TreeNode
}

// Leaf builds a leaf node.
func Leaf(name string, kind UnitKind, frac float64) *TreeNode {
	return &TreeNode{Name: name, Kind: kind, Core: -1, AreaFrac: frac}
}

// CoreLeaf builds a leaf for a core-internal block.
func CoreLeaf(core int, role BlockRole, frac float64) *TreeNode {
	return &TreeNode{
		Name: fmt.Sprintf("c%d.%s", core, role),
		Kind: UnitCoreBlock, Role: role, Core: core, AreaFrac: frac,
	}
}

// VSplit combines children side by side (left to right).
func VSplit(children ...*TreeNode) *TreeNode {
	return &TreeNode{Cut: CutVertical, Children: children, Core: -1}
}

// HSplit stacks children bottom to top.
func HSplit(children ...*TreeNode) *TreeNode {
	return &TreeNode{Cut: CutHorizontal, Children: children, Core: -1}
}

// totalFrac sums the subtree's leaf area fractions.
func (n *TreeNode) totalFrac() float64 {
	if n.Cut == CutNone {
		return n.AreaFrac
	}
	s := 0.0
	for _, c := range n.Children {
		s += c.totalFrac()
	}
	return s
}

// validate checks the subtree's structure.
func (n *TreeNode) validate() error {
	if n.Cut == CutNone {
		if n.Name == "" {
			return fmt.Errorf("floorplan: unnamed leaf")
		}
		if n.AreaFrac <= 0 {
			return fmt.Errorf("floorplan: leaf %q has area fraction %g", n.Name, n.AreaFrac)
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("floorplan: leaf %q has children", n.Name)
		}
		return nil
	}
	if len(n.Children) < 2 {
		return fmt.Errorf("floorplan: cut node with %d children", len(n.Children))
	}
	for _, c := range n.Children {
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}

// LayoutTree lays a slicing tree out over a die of the given size and
// returns a validated floorplan. Leaf area fractions must sum to 1
// (within 1e-6).
func LayoutTree(name string, root *TreeNode, width, height float64) (*Floorplan, error) {
	if root == nil {
		return nil, fmt.Errorf("floorplan: nil tree")
	}
	if err := root.validate(); err != nil {
		return nil, err
	}
	if total := root.totalFrac(); math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("floorplan: leaf fractions sum to %g, want 1", total)
	}
	var blocks []Block
	var layout func(n *TreeNode, r geom.Rect)
	layout = func(n *TreeNode, r geom.Rect) {
		if n.Cut == CutNone {
			blocks = append(blocks, Block{
				Name: n.Name, Kind: n.Kind, Role: n.Role, Core: n.Core, Rect: r,
			})
			return
		}
		total := n.totalFrac()
		offset := 0.0
		for _, c := range n.Children {
			share := c.totalFrac() / total
			var sub geom.Rect
			if n.Cut == CutVertical {
				w := r.W() * share
				sub = geom.NewRect(r.Min.X+offset, r.Min.Y, w, r.H())
				offset += w
			} else {
				h := r.H() * share
				sub = geom.NewRect(r.Min.X, r.Min.Y+offset, r.W(), h)
				offset += h
			}
			layout(c, sub)
		}
	}
	layout(root, geom.NewRect(0, 0, width, height))
	return newFloorplan(name, width, height, blocks)
}

// AspectRatio returns a block rectangle's long-over-short side ratio,
// used to score layouts (squarish blocks conduct and route better; §6.1
// notes the thermal grid also prefers squarish blocks).
func AspectRatio(r geom.Rect) float64 {
	w, h := r.W(), r.H()
	if w < h {
		w, h = h, w
	}
	if h == 0 {
		return math.Inf(1)
	}
	return w / h
}

// WorstAspect returns the worst block aspect ratio of a floorplan.
func WorstAspect(fp *Floorplan) float64 {
	worst := 1.0
	for _, b := range fp.Blocks {
		if ar := AspectRatio(b.Rect); ar > worst {
			worst = ar
		}
	}
	return worst
}
