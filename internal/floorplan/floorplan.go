// Package floorplan generates the die floorplans used by the thermal and
// power models. It plays the role ArchFP plays in the paper: a rapid
// pre-RTL floorplanner producing rectangular block layouts.
//
// Two floorplans are provided:
//
//   - the processor die (Fig. 6 of the paper): eight 4-issue cores around
//     the periphery, the shared-bus LLC region in the centre, four Wide
//     I/O memory controllers, and the central TSV bus;
//   - a Wide I/O DRAM slice (Figs. 1 and 5): a 4×4 bank array separated
//     by peripheral-logic strips, with a wider central strip carrying the
//     1,200-TSV Wide I/O bus.
//
// All coordinates are physical metres (see geom). Floorplans are validated
// at construction: blocks must tile the die exactly, with no overlap.
package floorplan

import (
	"fmt"

	"github.com/xylem-sim/xylem/internal/geom"
)

// UnitKind classifies a floorplan block. The power model keys per-block
// activity off the kind, and the stack builder keys conductivity maps off
// it (e.g. TSV-bus blocks get the composite Cu/Si conductivity).
type UnitKind int

const (
	// UnitOther covers filler/periphery with no special behaviour.
	UnitOther UnitKind = iota
	// UnitCoreBlock is an architectural block inside a core (see BlockRole).
	UnitCoreBlock
	// UnitLLC is the shared last-level-cache region.
	UnitLLC
	// UnitMemCtrl is a Wide I/O DRAM controller on the processor die.
	UnitMemCtrl
	// UnitTSVBus is the central Wide I/O TSV bus area.
	UnitTSVBus
	// UnitDRAMBank is one DRAM bank array.
	UnitDRAMBank
	// UnitDRAMPeriph is DRAM peripheral logic (decoders, pumps, I/O).
	UnitDRAMPeriph
)

// String names the unit kind for diagnostics.
func (k UnitKind) String() string {
	switch k {
	case UnitCoreBlock:
		return "core-block"
	case UnitLLC:
		return "llc"
	case UnitMemCtrl:
		return "memctrl"
	case UnitTSVBus:
		return "tsv-bus"
	case UnitDRAMBank:
		return "dram-bank"
	case UnitDRAMPeriph:
		return "dram-periph"
	default:
		return "other"
	}
}

// BlockRole identifies the architectural unit a core-internal block
// implements. Roles drive the per-block activity→power mapping.
type BlockRole int

const (
	RoleNone BlockRole = iota
	RoleFetch
	RoleDecode
	RoleROB
	RoleIssueQ
	RoleIntRF
	RoleIntALU
	RoleFPU
	RoleFPRF
	RoleLSU
	RoleL1I
	RoleL1D
	RoleL2
)

var roleNames = map[BlockRole]string{
	RoleNone: "none", RoleFetch: "fetch", RoleDecode: "decode", RoleROB: "rob",
	RoleIssueQ: "issueq", RoleIntRF: "int-rf", RoleIntALU: "int-alu",
	RoleFPU: "fpu", RoleFPRF: "fp-rf", RoleLSU: "lsu",
	RoleL1I: "l1i", RoleL1D: "l1d", RoleL2: "l2",
}

// String names the block role ("fpu", "l2", ...).
func (r BlockRole) String() string { return roleNames[r] }

// CoreRoles lists every in-core block role in a stable order.
var CoreRoles = []BlockRole{
	RoleFetch, RoleDecode, RoleROB, RoleIssueQ, RoleIntRF, RoleIntALU,
	RoleFPU, RoleFPRF, RoleLSU, RoleL1I, RoleL1D, RoleL2,
}

// Block is one rectangle of a floorplan.
type Block struct {
	Name string
	Kind UnitKind
	// Role is meaningful only for UnitCoreBlock.
	Role BlockRole
	// Core is the owning core index (0-7) for core blocks, -1 otherwise.
	Core int
	Rect geom.Rect
}

// Floorplan is a validated set of blocks tiling a rectangular die.
type Floorplan struct {
	Name          string
	Width, Height float64
	Blocks        []Block

	byName map[string]int
}

// Area returns the die area in m².
func (f *Floorplan) Area() float64 { return f.Width * f.Height }

// Find returns the block with the given name.
func (f *Floorplan) Find(name string) (Block, bool) {
	i, ok := f.byName[name]
	if !ok {
		return Block{}, false
	}
	return f.Blocks[i], true
}

// CoreBlocks returns the blocks belonging to core c, in declaration order.
func (f *Floorplan) CoreBlocks(c int) []Block {
	var out []Block
	for _, b := range f.Blocks {
		if b.Kind == UnitCoreBlock && b.Core == c {
			out = append(out, b)
		}
	}
	return out
}

// CoreRect returns the bounding rectangle of core c's blocks.
func (f *Floorplan) CoreRect(c int) geom.Rect {
	first := true
	var r geom.Rect
	for _, b := range f.Blocks {
		if b.Kind != UnitCoreBlock || b.Core != c {
			continue
		}
		if first {
			r, first = b.Rect, false
			continue
		}
		if b.Rect.Min.X < r.Min.X {
			r.Min.X = b.Rect.Min.X
		}
		if b.Rect.Min.Y < r.Min.Y {
			r.Min.Y = b.Rect.Min.Y
		}
		if b.Rect.Max.X > r.Max.X {
			r.Max.X = b.Rect.Max.X
		}
		if b.Rect.Max.Y > r.Max.Y {
			r.Max.Y = b.Rect.Max.Y
		}
	}
	return r
}

// validate checks that blocks are inside the die, pairwise disjoint, and
// together cover the die area (within a relative tolerance of 1e-6).
func (f *Floorplan) validate() error {
	die := geom.NewRect(0, 0, f.Width, f.Height)
	total := 0.0
	for i, b := range f.Blocks {
		if b.Rect.Empty() {
			return fmt.Errorf("floorplan %s: block %q is empty", f.Name, b.Name)
		}
		clip := b.Rect.Intersect(die)
		if absDiff(clip.Area(), b.Rect.Area()) > 1e-9*die.Area() {
			return fmt.Errorf("floorplan %s: block %q extends outside the die", f.Name, b.Name)
		}
		total += b.Rect.Area()
		for j := i + 1; j < len(f.Blocks); j++ {
			o := f.Blocks[j]
			ov := b.Rect.Intersect(o.Rect)
			if !ov.Empty() && ov.Area() > 1e-9*die.Area() {
				return fmt.Errorf("floorplan %s: blocks %q and %q overlap by %.3g mm²",
					f.Name, b.Name, o.Name, ov.Area()/1e-6)
			}
		}
	}
	if absDiff(total, die.Area()) > 1e-6*die.Area() {
		return fmt.Errorf("floorplan %s: blocks cover %.6g mm² of a %.6g mm² die",
			f.Name, total/1e-6, die.Area()/1e-6)
	}
	return nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func newFloorplan(name string, w, h float64, blocks []Block) (*Floorplan, error) {
	f := &Floorplan{Name: name, Width: w, Height: h, Blocks: blocks}
	f.byName = make(map[string]int, len(blocks))
	for i, b := range blocks {
		if _, dup := f.byName[b.Name]; dup {
			return nil, fmt.Errorf("floorplan %s: duplicate block name %q", name, b.Name)
		}
		f.byName[b.Name] = i
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}
