package floorplan

import (
	"fmt"

	"github.com/xylem-sim/xylem/internal/geom"
)

// ProcConfig parameterises the processor-die floorplan. The defaults
// reproduce the layout of Fig. 6 in the paper: an 8 mm × 8 mm die with
// four cores along the bottom edge, four along the top edge, and the LLC,
// memory controllers and TSV bus in the central stripe. This "cores
// outside, cache in the middle" arrangement matches the commercial layouts
// the paper cites (POWER7, SPARC T-series, Itanium Poulson, Bulldozer).
type ProcConfig struct {
	// Width and Height of the die, metres.
	Width, Height float64
	// CoreRowHeight is the height of each of the two core rows, metres.
	CoreRowHeight float64
	// TSVBusW and TSVBusH size the central Wide I/O TSV-bus block; it is
	// placed at the exact die centre so it aligns vertically with the TSV
	// bus on every DRAM slice.
	TSVBusW, TSVBusH float64
	// MemCtrlW and MemCtrlH size each of the four Wide I/O controllers.
	MemCtrlW, MemCtrlH float64
}

// DefaultProcConfig returns the configuration used throughout the paper's
// evaluation: a ~64 mm² eight-core die.
func DefaultProcConfig() ProcConfig {
	return ProcConfig{
		Width:         8.0 * geom.Millimetre,
		Height:        8.0 * geom.Millimetre,
		CoreRowHeight: 2.5 * geom.Millimetre,
		TSVBusW:       2.4 * geom.Millimetre,
		TSVBusH:       0.4 * geom.Millimetre,
		MemCtrlW:      1.0 * geom.Millimetre,
		MemCtrlH:      0.6 * geom.Millimetre,
	}
}

// InnerCores and OuterCores identify the core positions used by the
// λ-aware techniques (§5.2): cores 1,2,5,6 (0-indexed) sit in the two
// middle columns and have the smaller average distance to the high-λ
// sites; cores 0,3,4,7 sit at the die edges.
//
// Core numbering: cores 0-3 left→right along the bottom row, cores 4-7
// left→right along the top row (the paper's cores 1-8).
var (
	InnerCores = []int{1, 2, 5, 6}
	OuterCores = []int{0, 3, 4, 7}
)

// coreBlockSpec describes the per-core internal layout as fractional rows.
// Each row spans the full core width and is divided into blocks by width
// fractions. Row 0 is the row nearest the die edge. The hot execution row
// (ALU/FPU) sits mid-core: the two core rows' hotspots stay >5 mm apart
// (the paper's hotspot-separation requirement), while remaining near the
// DRAM dies' inter-bank peripheral strips where banke places its
// near-core TTSVs. The L2 sits nearest the LLC stripe.
type coreBlockSpec struct {
	hFrac  float64 // row height as a fraction of core height
	blocks []struct {
		role  BlockRole
		wFrac float64
	}
}

var coreRows = []coreBlockSpec{
	{0.18, []struct {
		role  BlockRole
		wFrac float64
	}{{RoleFetch, 0.35}, {RoleDecode, 0.30}, {RoleLSU, 0.35}}},
	{0.18, []struct {
		role  BlockRole
		wFrac float64
	}{{RoleL1I, 0.50}, {RoleL1D, 0.50}}},
	{0.28, []struct {
		role  BlockRole
		wFrac float64
	}{{RoleFPU, 0.40}, {RoleIntALU, 0.35}, {RoleFPRF, 0.25}}},
	{0.18, []struct {
		role  BlockRole
		wFrac float64
	}{{RoleROB, 0.35}, {RoleIssueQ, 0.30}, {RoleIntRF, 0.35}}},
	{0.18, []struct {
		role  BlockRole
		wFrac float64
	}{{RoleL2, 1.00}}},
}

// BuildProcDie constructs the processor-die floorplan.
func BuildProcDie(cfg ProcConfig) (*Floorplan, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("floorplan: non-positive proc die dimensions")
	}
	if 2*cfg.CoreRowHeight >= cfg.Height {
		return nil, fmt.Errorf("floorplan: core rows (2×%.3g mm) exceed die height %.3g mm",
			cfg.CoreRowHeight/geom.Millimetre, cfg.Height/geom.Millimetre)
	}
	var blocks []Block

	coreW := cfg.Width / 4
	// Bottom row: cores 0-3. Right-half cores mirror in x so the hot
	// execution clusters of the outer cores face the die edges while the
	// inner cores' clusters sit near the die's vertical mid-strips.
	for c := 0; c < 4; c++ {
		x := float64(c) * coreW
		blocks = append(blocks, coreBlocks(c, geom.NewRect(x, 0, coreW, cfg.CoreRowHeight), false, c >= 2)...)
	}
	// Top row: cores 4-7, mirrored in y so the hot row faces the top die
	// edge, with the same x mirroring for the right half.
	topY := cfg.Height - cfg.CoreRowHeight
	for c := 4; c < 8; c++ {
		x := float64(c-4) * coreW
		blocks = append(blocks, coreBlocks(c, geom.NewRect(x, topY, coreW, cfg.CoreRowHeight), true, c-4 >= 2)...)
	}

	// Central stripe: LLC everywhere except the TSV bus and the four
	// memory controllers. The stripe is decomposed into disjoint
	// rectangles around those carve-outs.
	stripe := geom.NewRect(0, cfg.CoreRowHeight, cfg.Width, cfg.Height-2*cfg.CoreRowHeight)
	bus := centreRect(stripe, cfg.TSVBusW, cfg.TSVBusH)
	blocks = append(blocks, Block{Name: "tsvbus", Kind: UnitTSVBus, Core: -1, Rect: bus})

	// Memory controllers: one per Wide I/O channel, flanking the bus.
	mcY0 := bus.Min.Y - cfg.MemCtrlH
	mcY1 := bus.Max.Y
	mcXL := bus.Min.X - cfg.MemCtrlW
	mcXR := bus.Max.X
	mcs := []geom.Rect{
		geom.NewRect(mcXL, mcY0, cfg.MemCtrlW, cfg.MemCtrlH),
		geom.NewRect(mcXR, mcY0, cfg.MemCtrlW, cfg.MemCtrlH),
		geom.NewRect(mcXL, mcY1, cfg.MemCtrlW, cfg.MemCtrlH),
		geom.NewRect(mcXR, mcY1, cfg.MemCtrlW, cfg.MemCtrlH),
	}
	for i, r := range mcs {
		blocks = append(blocks, Block{Name: fmt.Sprintf("mc%d", i), Kind: UnitMemCtrl, Core: -1, Rect: r})
	}

	// LLC fills the rest of the stripe. Decompose: full-width bands below
	// and above the carve-out band, plus left/right flanks beside it.
	carve := geom.Rect{
		Min: geom.Point{X: mcXL, Y: mcY0},
		Max: geom.Point{X: mcXR + cfg.MemCtrlW, Y: mcY1 + cfg.MemCtrlH},
	}
	llcParts := []geom.Rect{
		{Min: geom.Point{X: stripe.Min.X, Y: stripe.Min.Y}, Max: geom.Point{X: stripe.Max.X, Y: carve.Min.Y}},
		{Min: geom.Point{X: stripe.Min.X, Y: carve.Max.Y}, Max: geom.Point{X: stripe.Max.X, Y: stripe.Max.Y}},
		{Min: geom.Point{X: stripe.Min.X, Y: carve.Min.Y}, Max: geom.Point{X: carve.Min.X, Y: carve.Max.Y}},
		{Min: geom.Point{X: carve.Max.X, Y: carve.Min.Y}, Max: geom.Point{X: stripe.Max.X, Y: carve.Max.Y}},
		// Inside the carve band but outside bus/MCs: the gap between the
		// two lower MCs (below the bus), between the two upper MCs
		// (above the bus), and the gaps flanking the bus between the MC
		// columns.
		{Min: geom.Point{X: bus.Min.X, Y: carve.Min.Y}, Max: geom.Point{X: bus.Max.X, Y: bus.Min.Y}},
		{Min: geom.Point{X: bus.Min.X, Y: bus.Max.Y}, Max: geom.Point{X: bus.Max.X, Y: carve.Max.Y}},
		{Min: geom.Point{X: carve.Min.X, Y: bus.Min.Y}, Max: geom.Point{X: bus.Min.X, Y: bus.Max.Y}},
		{Min: geom.Point{X: bus.Max.X, Y: bus.Min.Y}, Max: geom.Point{X: carve.Max.X, Y: bus.Max.Y}},
	}
	n := 0
	for _, r := range llcParts {
		if r.Empty() || r.Area() < 1e-12 {
			continue
		}
		blocks = append(blocks, Block{Name: fmt.Sprintf("llc%d", n), Kind: UnitLLC, Core: -1, Rect: r})
		n++
	}

	return newFloorplan("proc-die", cfg.Width, cfg.Height, blocks)
}

// coreBlocks lays out one core's internal blocks inside rect. When
// mirrorY is true the row order flips vertically (the top core row, so
// the hot execution row faces the top die edge); when mirrorX is true
// each row's blocks flip horizontally (right-half cores, so the hot
// cluster faces the nearer vertical die edge).
func coreBlocks(core int, rect geom.Rect, mirrorY, mirrorX bool) []Block {
	var out []Block
	y := rect.Min.Y
	rows := coreRows
	if mirrorY {
		rows = make([]coreBlockSpec, len(coreRows))
		for i := range coreRows {
			rows[i] = coreRows[len(coreRows)-1-i]
		}
	}
	for _, row := range rows {
		h := row.hFrac * rect.H()
		blocks := row.blocks
		if mirrorX {
			blocks = make([]struct {
				role  BlockRole
				wFrac float64
			}, len(row.blocks))
			for i := range row.blocks {
				blocks[i] = row.blocks[len(row.blocks)-1-i]
			}
		}
		x := rect.Min.X
		for _, b := range blocks {
			w := b.wFrac * rect.W()
			out = append(out, Block{
				Name: fmt.Sprintf("c%d.%s", core, b.role),
				Kind: UnitCoreBlock,
				Role: b.role,
				Core: core,
				Rect: geom.NewRect(x, y, w, h),
			})
			x += w
		}
		y += h
	}
	return out
}

// centreRect returns a w×h rectangle centred inside r.
func centreRect(r geom.Rect, w, h float64) geom.Rect {
	c := r.Center()
	return geom.NewRect(c.X-w/2, c.Y-h/2, w, h)
}
