package floorplan

import (
	"fmt"

	"github.com/xylem-sim/xylem/internal/geom"
)

// DRAMConfig parameterises a Wide I/O DRAM slice floorplan. The defaults
// give an 8 mm × 8 mm (≈64 mm²) slice — the paper's dies are ≈64.34 mm²,
// matching Samsung's Wide I/O prototype — holding a 4×4 bank array (4
// ranks × 4 banks, one rank per channel) separated by peripheral-logic
// strips, with a wider central strip that carries the 1,200-TSV Wide I/O
// bus.
type DRAMConfig struct {
	Width, Height float64
	// StripW is the width of the thin peripheral-logic strips that
	// separate banks and ring the die edge, metres.
	StripW float64
	// CentreStripH is the height of the wide central peripheral strip
	// containing the TSV bus, metres.
	CentreStripH float64
	// TSVBusW and TSVBusH size the TSV-bus block placed at the die centre
	// (48 sub-blocks of 5×5 TSVs in the thermal model).
	TSVBusW, TSVBusH float64
}

// DefaultDRAMConfig returns the slice geometry used in the evaluation.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Width:        8.0 * geom.Millimetre,
		Height:       8.0 * geom.Millimetre,
		StripW:       0.2 * geom.Millimetre,
		CentreStripH: 1.0 * geom.Millimetre,
		TSVBusW:      2.4 * geom.Millimetre,
		TSVBusH:      0.4 * geom.Millimetre,
	}
}

// SliceGeometry records the derived strip/bank coordinates the stack
// builder needs to place TTSVs in peripheral logic (the paper's Fig. 5
// schemes). All coordinates are metres.
type SliceGeometry struct {
	Cfg DRAMConfig
	// HStripCentres are the Y centres of the five horizontal peripheral
	// strips, bottom to top. Index 2 is the wide central strip.
	HStripCentres [5]float64
	// VStripCentres are the X centres of the five vertical peripheral
	// strips, left to right.
	VStripCentres [5]float64
	// BankXCentres are the X centres of the four bank columns.
	BankXCentres [4]float64
	// BankYCentres are the Y centres of the four bank rows.
	BankYCentres [4]float64
	// BankW and BankH are the bank array dimensions.
	BankW, BankH float64
}

// CentreStripRect returns the rectangle of the wide central strip.
func (g SliceGeometry) CentreStripRect() geom.Rect {
	return geom.NewRect(0, g.HStripCentres[2]-g.Cfg.CentreStripH/2, g.Cfg.Width, g.Cfg.CentreStripH)
}

// BuildDRAMSlice constructs one Wide I/O slice floorplan plus its derived
// geometry. Bank block names are "bank_ch{c}b{b}" where c is the channel
// (= rank within the slice) owning the quadrant and b the bank within the
// rank, matching the Wide I/O organisation of Fig. 1.
func BuildDRAMSlice(cfg DRAMConfig) (*Floorplan, SliceGeometry, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, SliceGeometry{}, fmt.Errorf("floorplan: non-positive DRAM die dimensions")
	}
	bankW := (cfg.Width - 5*cfg.StripW) / 4
	bankH := (cfg.Height - 4*cfg.StripW - cfg.CentreStripH) / 4
	if bankW <= 0 || bankH <= 0 {
		return nil, SliceGeometry{}, fmt.Errorf("floorplan: strips leave no room for banks")
	}

	// Vertical extents, bottom to top:
	//   strip | bank row0 | strip | bank row1 | centre strip |
	//   bank row2 | strip | bank row3 | strip
	yStrip0 := 0.0
	yRow0 := yStrip0 + cfg.StripW
	yStrip1 := yRow0 + bankH
	yRow1 := yStrip1 + cfg.StripW
	yCentre := yRow1 + bankH
	yRow2 := yCentre + cfg.CentreStripH
	yStrip3 := yRow2 + bankH
	yRow3 := yStrip3 + cfg.StripW
	yStrip4 := yRow3 + bankH

	geomOut := SliceGeometry{Cfg: cfg, BankW: bankW, BankH: bankH}
	geomOut.HStripCentres = [5]float64{
		yStrip0 + cfg.StripW/2,
		yStrip1 + cfg.StripW/2,
		yCentre + cfg.CentreStripH/2,
		yStrip3 + cfg.StripW/2,
		yStrip4 + cfg.StripW/2,
	}
	bankYs := [4]float64{yRow0, yRow1, yRow2, yRow3}
	for i, y := range bankYs {
		geomOut.BankYCentres[i] = y + bankH/2
	}
	xs := [4]float64{}
	for c := 0; c < 4; c++ {
		x := cfg.StripW + float64(c)*(bankW+cfg.StripW)
		xs[c] = x
		geomOut.BankXCentres[c] = x + bankW/2
		geomOut.VStripCentres[c] = x - cfg.StripW/2
	}
	geomOut.VStripCentres[4] = cfg.Width - cfg.StripW/2

	var blocks []Block

	// Banks. Quadrants own channels: ch0=bottom-left, ch1=bottom-right,
	// ch2=top-left, ch3=top-right; the 2×2 banks inside a quadrant are
	// banks 0-3 of that channel's rank on this slice.
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			ch := 0
			if col >= 2 {
				ch = 1
			}
			if row >= 2 {
				ch += 2
			}
			bank := (row%2)*2 + col%2
			blocks = append(blocks, Block{
				Name: fmt.Sprintf("bank_ch%db%d", ch, bank),
				Kind: UnitDRAMBank,
				Core: -1,
				Rect: geom.NewRect(xs[col], bankYs[row], bankW, bankH),
			})
		}
	}

	// TSV bus at the die centre, inside the central strip.
	bus := centreRect(geom.NewRect(0, 0, cfg.Width, cfg.Height), cfg.TSVBusW, cfg.TSVBusH)
	if bus.Min.Y < yCentre || bus.Max.Y > yRow2 {
		return nil, SliceGeometry{}, fmt.Errorf("floorplan: TSV bus taller than the centre strip")
	}
	blocks = append(blocks, Block{Name: "tsvbus", Kind: UnitTSVBus, Core: -1, Rect: bus})

	// Peripheral logic fills everything else. Decompose into:
	//  - 4 full-width horizontal strips (the thin ones),
	//  - the centre strip minus the bus carve-out (left, right, below, above),
	//  - 5 vertical strip segments per bank row.
	periph := 0
	addPeriph := func(r geom.Rect) {
		if r.Empty() || r.Area() < 1e-14 {
			return
		}
		blocks = append(blocks, Block{
			Name: fmt.Sprintf("periph%d", periph),
			Kind: UnitDRAMPeriph,
			Core: -1,
			Rect: r,
		})
		periph++
	}
	addPeriph(geom.NewRect(0, yStrip0, cfg.Width, cfg.StripW))
	addPeriph(geom.NewRect(0, yStrip1, cfg.Width, cfg.StripW))
	addPeriph(geom.NewRect(0, yStrip3, cfg.Width, cfg.StripW))
	addPeriph(geom.NewRect(0, yStrip4, cfg.Width, cfg.StripW))
	// Centre strip around the bus.
	addPeriph(geom.Rect{Min: geom.Point{X: 0, Y: yCentre}, Max: geom.Point{X: bus.Min.X, Y: yRow2}})
	addPeriph(geom.Rect{Min: geom.Point{X: bus.Max.X, Y: yCentre}, Max: geom.Point{X: cfg.Width, Y: yRow2}})
	addPeriph(geom.Rect{Min: geom.Point{X: bus.Min.X, Y: yCentre}, Max: geom.Point{X: bus.Max.X, Y: bus.Min.Y}})
	addPeriph(geom.Rect{Min: geom.Point{X: bus.Min.X, Y: bus.Max.Y}, Max: geom.Point{X: bus.Max.X, Y: yRow2}})
	// Vertical segments in each bank row.
	for _, y := range bankYs {
		addPeriph(geom.NewRect(0, y, cfg.StripW, bankH))
		for c := 0; c < 3; c++ {
			addPeriph(geom.NewRect(xs[c]+bankW, y, cfg.StripW, bankH))
		}
		addPeriph(geom.NewRect(cfg.Width-cfg.StripW, y, cfg.StripW, bankH))
	}

	fp, err := newFloorplan("dram-slice", cfg.Width, cfg.Height, blocks)
	if err != nil {
		return nil, SliceGeometry{}, err
	}
	return fp, geomOut, nil
}
