package material

import (
	"math"
	"testing"

	"github.com/xylem-sim/xylem/internal/geom"
)

// The paper's headline Rth numbers (§2.5): the D2D layer at 13.33 mm²K/W
// is ≈16x more resistive than bulk silicon (0.83) and ≈13x more than the
// processor metal layers (1.0).
func TestPaperRthNumbers(t *testing.T) {
	d2d := MM2KPerW(D2DUnderfill.SheetRth(20 * geom.Micron))
	if math.Abs(d2d-13.333) > 0.01 {
		t.Fatalf("D2D Rth = %.3f mm²K/W, want 13.33", d2d)
	}
	si := MM2KPerW(Silicon.SheetRth(100 * geom.Micron))
	if math.Abs(si-0.8333) > 0.001 {
		t.Fatalf("bulk Si Rth = %.4f mm²K/W, want 0.833", si)
	}
	metal := MM2KPerW(ProcMetal.SheetRth(12 * geom.Micron))
	if math.Abs(metal-1.0) > 0.001 {
		t.Fatalf("proc metal Rth = %.4f mm²K/W, want 1.0", metal)
	}
	if ratio := d2d / si; ratio < 15.5 || ratio > 16.5 {
		t.Fatalf("D2D/Si ratio = %.1f, want ≈16", ratio)
	}
	if ratio := d2d / metal; ratio < 12.8 || ratio > 13.8 {
		t.Fatalf("D2D/metal ratio = %.1f, want ≈13", ratio)
	}
}

// §4.1.2: the aligned-and-shorted pillar crossing the D2D layer has
// Rth = 18µm/40 + 2µm/400 = 0.46 mm²K/W, ≈30x lower than 13.33.
func TestShortedPillarRth(t *testing.T) {
	rth := MM2KPerW(SeriesRth(
		[]float64{18 * geom.Micron, 2 * geom.Micron},
		[]float64{MicroBump.Conductivity, Copper.Conductivity},
	))
	if math.Abs(rth-0.455) > 0.005 {
		t.Fatalf("pillar Rth = %.4f mm²K/W, want 0.455 (paper rounds to 0.46)", rth)
	}
	ratio := 13.333 / rth
	if ratio < 28 || ratio > 31 {
		t.Fatalf("improvement ratio = %.1f, want ≈30x", ratio)
	}
}

// §4.1.2: the frontside metal layers of a DRAM die present only
// 0.22 mm²K/W (d=2 µm, λ=9 W/mK).
func TestFrontsideMetalRth(t *testing.T) {
	rth := MM2KPerW(DRAMMetal.SheetRth(2 * geom.Micron))
	if math.Abs(rth-0.222) > 0.002 {
		t.Fatalf("frontside metal Rth = %.4f, want 0.22", rth)
	}
}

// §6.1's worked example: a TSV bus of 25% Cu and 75% Si has an effective
// λ of 190 W/mK.
func TestCompositeTSVBus(t *testing.T) {
	lam := Composite([]float64{0.25, 0.75}, []Props{Copper, Silicon})
	if math.Abs(lam-190) > 1e-9 {
		t.Fatalf("TSV bus λ = %g, want 190", lam)
	}
}

func TestCompositeValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("mismatched lengths", func() {
		Composite([]float64{1}, []Props{Copper, Silicon})
	})
	mustPanic("fractions != 1", func() {
		Composite([]float64{0.25, 0.25}, []Props{Copper, Silicon})
	})
	mustPanic("negative fraction", func() {
		Composite([]float64{-0.5, 1.5}, []Props{Copper, Silicon})
	})
}

func TestEffectiveLambdaRoundTrip(t *testing.T) {
	// λ -> Rth -> λ must round-trip for a uniform slab.
	thick := 20 * geom.Micron
	rth := D2DUnderfill.SheetRth(thick)
	lam := EffectiveLambda(thick, rth)
	if math.Abs(lam-D2DUnderfill.Conductivity) > 1e-12 {
		t.Fatalf("round trip λ = %g, want %g", lam, D2DUnderfill.Conductivity)
	}
}

func TestSeriesRthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SeriesRth with zero λ did not panic")
		}
	}()
	SeriesRth([]float64{1e-6}, []float64{0})
}
