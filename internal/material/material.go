// Package material defines the thermal material properties used to build
// processor-memory stacks, and the composite-conductivity arithmetic the
// paper uses for heterogeneous regions (TSV buses, µbump fields).
//
// All conductivities are in W/(m·K), thicknesses in metres, volumetric heat
// capacities in J/(m³·K). The headline values come from Table 1 of the
// paper and the measurements it cites (Colgan/IBM, Matsumoto, Oprins/IMEC).
package material

import "fmt"

// Props describes one homogeneous material.
type Props struct {
	Name string
	// Conductivity is the thermal conductivity λ in W/(m·K).
	Conductivity float64
	// VolHeatCapacity is ρ·c in J/(m³·K), used by the transient solver.
	VolHeatCapacity float64
}

// The materials of the stack. Conductivities follow Table 1 of the paper;
// volumetric heat capacities are standard handbook values (HotSpot uses
// the same silicon and copper numbers).
var (
	// Silicon is bulk silicon: λ=120 W/mK in the paper's stack tables.
	Silicon = Props{Name: "Si", Conductivity: 120, VolHeatCapacity: 1.75e6}
	// Copper is the TSV/TTSV fill and heat-sink metal: λ=400 W/mK.
	Copper = Props{Name: "Cu", Conductivity: 400, VolHeatCapacity: 3.55e6}
	// ProcMetal is the processor frontside metal stack (Cu + dielectric):
	// λ=12 W/mK over 12 µm (Rth ≈ 1 mm²K/W).
	ProcMetal = Props{Name: "proc-metal", Conductivity: 12, VolHeatCapacity: 2.0e6}
	// DRAMMetal is the DRAM die metal stack (Al + dielectric): λ=9 W/mK.
	DRAMMetal = Props{Name: "dram-metal", Conductivity: 9, VolHeatCapacity: 2.0e6}
	// D2DUnderfill is the average die-to-die layer with a 25%-density dummy
	// µbump fill: λ=1.5 W/mK as measured by IBM [9,11] and Matsumoto [39].
	D2DUnderfill = Props{Name: "d2d", Conductivity: 1.5, VolHeatCapacity: 2.2e6}
	// MicroBump is a Cu-pillar/solder µbump: λ=40 W/mK [39].
	MicroBump = Props{Name: "ubump", Conductivity: 40, VolHeatCapacity: 3.0e6}
	// TIM is the thermal interface material between top die and IHS: λ=5.
	TIM = Props{Name: "tim", Conductivity: 5, VolHeatCapacity: 4.0e6}
)

// SheetRth returns the thermal resistance per unit area, t/λ, of a slab of
// thickness t (metres) made of this material, in m²·K/W. The paper quotes
// these in mm²·K/W; multiply by 1e6 to convert.
func (p Props) SheetRth(thickness float64) float64 {
	return thickness / p.Conductivity
}

// MM2KPerW converts an Rth in m²K/W to the paper's mm²K/W unit.
func MM2KPerW(rth float64) float64 { return rth * 1e6 }

// Composite computes the effective conductivity of an area covered by
// several materials in parallel (heat flowing normal to the plane through
// side-by-side columns). Following the paper (§6.1, citing [41]):
//
//	λ_eff = Σ ρ_i · λ_i, with Σ ρ_i = 1
//
// It panics if the occupancies do not sum to 1 within a small tolerance,
// because a mis-specified composite silently corrupts the whole thermal
// model.
func Composite(fractions []float64, mats []Props) float64 {
	if len(fractions) != len(mats) {
		panic(fmt.Sprintf("material: %d fractions for %d materials", len(fractions), len(mats)))
	}
	sum, lambda := 0.0, 0.0
	for i, f := range fractions {
		if f < 0 {
			panic(fmt.Sprintf("material: negative fraction %g for %s", f, mats[i].Name))
		}
		sum += f
		lambda += f * mats[i].Conductivity
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("material: fractions sum to %g, want 1", sum))
	}
	return lambda
}

// SeriesRth returns the thermal resistance per unit area of slabs stacked
// in series: Σ t_i/λ_i, in m²K/W. This is the arithmetic behind the
// paper's 0.46 mm²K/W shorted-pillar figure (18 µm µbump at 40 W/mK plus a
// 2 µm backside-metal short at 400 W/mK).
func SeriesRth(thicknesses, lambdas []float64) float64 {
	if len(thicknesses) != len(lambdas) {
		panic("material: mismatched series slabs")
	}
	rth := 0.0
	for i, t := range thicknesses {
		if lambdas[i] <= 0 {
			panic("material: non-positive conductivity in series stack")
		}
		rth += t / lambdas[i]
	}
	return rth
}

// EffectiveLambda converts a per-area resistance Rth of a slab of total
// thickness t back into the equivalent uniform conductivity λ = t/Rth.
// The stack builder uses this to express the aligned-and-shorted
// µbump-TTSV pillar as a high-λ cell within the 20 µm D2D layer.
func EffectiveLambda(thickness, rth float64) float64 {
	if rth <= 0 {
		panic("material: non-positive Rth")
	}
	return thickness / rth
}
