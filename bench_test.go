// Package xylem's benchmark harness regenerates every table and figure of
// the paper's evaluation (§7). Each BenchmarkFigNN runs the corresponding
// experiment and prints the same rows/series the paper reports.
//
// The experiments share one Runner (and therefore one activity cache), so
// running the full suite costs far less than the sum of its parts. By
// default the harness runs at a moderately reduced scale (24×24 thermal
// grid, 150k-instruction traces, all 17 applications); set
// XYLEM_BENCH_FULL=1 for the paper-scale configuration.
//
// Micro-benchmarks for the substrates (thermal solver, multicore
// simulator, DRAM controller) follow the figure benchmarks.
package xylem

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/xylem-sim/xylem/internal/cpusim"
	"github.com/xylem-sim/xylem/internal/dram"
	"github.com/xylem-sim/xylem/internal/exp"
	"github.com/xylem-sim/xylem/internal/floorplan"
	"github.com/xylem-sim/xylem/internal/geom"
	"github.com/xylem-sim/xylem/internal/perf"
	"github.com/xylem-sim/xylem/internal/stack"
	"github.com/xylem-sim/xylem/internal/thermal"
	"github.com/xylem-sim/xylem/internal/workload"
)

var (
	benchMu     sync.Mutex
	benchRunner *exp.Runner
	benchBoost  []exp.BoostRow
	benchSweep  *exp.TempSweep
)

func benchOptions() exp.Options {
	if testing.Short() {
		// `make bench-smoke` scale: the same reduced configuration the
		// tier-1 tests use, so CI can afford one pass of each figure.
		return exp.QuickOptions()
	}
	o := exp.DefaultOptions()
	if os.Getenv("XYLEM_BENCH_FULL") == "" {
		o.GridRows, o.GridCols = 24, 24
		o.Instructions = 150_000
	}
	return o
}

// runner returns the shared experiment runner.
func runner(b *testing.B) *exp.Runner {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchRunner == nil {
		r, err := exp.NewRunner(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		benchRunner = r
	}
	return benchRunner
}

// boostRows runs (once) the §7.3 boost sweep shared by Figures 9-12.
func boostRows(b *testing.B, r *exp.Runner) []exp.BoostRow {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchBoost == nil {
		rows, err := r.BoostSweep()
		if err != nil {
			b.Fatal(err)
		}
		benchBoost = rows
	}
	return benchBoost
}

// tempSweep runs (once) the temperature sweep shared by Figures 7 and 13.
func tempSweep(b *testing.B, r *exp.Runner) exp.TempSweep {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchSweep == nil {
		s, err := r.TempSweep()
		if err != nil {
			b.Fatal(err)
		}
		benchSweep = &s
	}
	return *benchSweep
}

func printOnce(b *testing.B, t exp.Table) {
	if b.N >= 1 {
		fmt.Println(t.String())
	}
}

// BenchmarkTableAreaOverhead regenerates the §7.1 area-overhead numbers
// (bank 0.4032 mm² = 0.63%, banke 0.5184 mm² = 0.81%).
func BenchmarkTableAreaOverhead(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.TableArea()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig07ProcessorTemperature regenerates Fig. 7: the steady-state
// processor hotspot for every app × {base,bank,banke,prior} × frequency.
func BenchmarkFig07ProcessorTemperature(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tempSweep(b, r)
	}
	_, t, err := r.Figure7()
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b, t)
}

// BenchmarkFig08TemperatureReduction regenerates Fig. 8 (paper means:
// bank 5.0 °C, banke 8.4 °C at 2.4 GHz).
func BenchmarkFig08TemperatureReduction(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig09FrequencyBoost regenerates Fig. 9 (paper means: bank
// +400 MHz, banke +720 MHz at iso-temperature).
func BenchmarkFig09FrequencyBoost(b *testing.B) {
	r := runner(b)
	var rows []exp.BoostRow
	for i := 0; i < b.N; i++ {
		rows = boostRows(b, r)
	}
	printOnce(b, r.Figure9(rows))
}

// BenchmarkFig10PerformanceGain regenerates Fig. 10 (paper means: bank
// +11%, banke +18%).
func BenchmarkFig10PerformanceGain(b *testing.B) {
	r := runner(b)
	var rows []exp.BoostRow
	for i := 0; i < b.N; i++ {
		rows = boostRows(b, r)
	}
	printOnce(b, r.Figure10(rows))
}

// BenchmarkFig11PowerIncrease regenerates Fig. 11 (paper means: bank
// +12%, banke +22%).
func BenchmarkFig11PowerIncrease(b *testing.B) {
	r := runner(b)
	var rows []exp.BoostRow
	for i := 0; i < b.N; i++ {
		rows = boostRows(b, r)
	}
	printOnce(b, r.Figure11(rows))
}

// BenchmarkFig12EnergyChange regenerates Fig. 12 (paper: ≈0% on average).
func BenchmarkFig12EnergyChange(b *testing.B) {
	r := runner(b)
	var rows []exp.BoostRow
	for i := 0; i < b.N; i++ {
		rows = boostRows(b, r)
	}
	printOnce(b, r.Figure12(rows))
}

// BenchmarkFig13MemoryTemperature regenerates Fig. 13: the bottom-most
// memory die's hotspot across the same sweep as Fig. 7.
func BenchmarkFig13MemoryTemperature(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		tempSweep(b, r)
	}
	_, t, err := r.Figure13()
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b, t)
}

// BenchmarkFig14IsoCount regenerates Fig. 14: bank vs isoCount (paper:
// isoCount −3.7 °C vs bank on average).
func BenchmarkFig14IsoCount(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure14()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig15ThreadPlacement regenerates Fig. 15: λ-aware thread
// placement (paper: Inside gains 100 MHz on base, 200 MHz on banke).
func BenchmarkFig15ThreadPlacement(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure15()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig16FrequencyBoosting regenerates Fig. 16: λ-aware frequency
// boosting (paper: banke boosts the inner cores by 100 MHz).
func BenchmarkFig16FrequencyBoosting(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure16()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig17ThreadMigration regenerates Fig. 17: λ-aware thread
// migration (paper: inner migration saves ≈0.4 °C on base, ≈1.5 °C on
// banke).
func BenchmarkFig17ThreadMigration(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure17()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig18DieThickness regenerates Fig. 18: the 50/100/200 µm die
// thickness sensitivity.
func BenchmarkFig18DieThickness(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure18()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// BenchmarkFig19MemoryDies regenerates Fig. 19: the 4/8/12 memory-die
// sensitivity.
func BenchmarkFig19MemoryDies(b *testing.B) {
	r := runner(b)
	var t exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, t, err = r.Figure19()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, t)
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkThermalSteadyState measures one steady-state solve of the full
// 8-die stack model across preconditioners and serial vs parallel CG
// kernels. The 24×24 grid sits below the parallel threshold (the workers
// sub-benchmarks must tie); the 64×64 grid is where the chunked kernels
// earn their keep, and the mg/jacobi pair prices the V-cycle against the
// iterations it saves.
func BenchmarkThermalSteadyState(b *testing.B) {
	grids := []int{24, 64}
	if testing.Short() {
		grids = []int{24}
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	preconds := []thermal.Precond{thermal.PrecondMG, thermal.PrecondJacobi}
	for _, n := range grids {
		for _, workers := range workerCounts {
			for _, pc := range preconds {
				b.Run(fmt.Sprintf("grid%d/workers%d/%s", n, workers, pc), func(b *testing.B) {
					cfg := stack.DefaultConfig()
					cfg.GridRows, cfg.GridCols = n, n
					st, err := stack.Build(cfg, stack.BankE)
					if err != nil {
						b.Fatal(err)
					}
					solver, err := thermal.NewSolver(st.Model)
					if err != nil {
						b.Fatal(err)
					}
					solver.Workers = workers
					solver.DefaultPrecond = pc
					defer solver.Close()
					pm := st.Model.NewPowerMap()
					for c := 0; c < 8; c++ {
						pm.AddBlock(st.Model.Grid, st.ProcMetalLayer, st.Proc.CoreRect(c), 2)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := solver.SteadyState(pm); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkThermalSteadyStateBatch prices the multi-RHS batched solver
// against k sequential solves of the same right-hand sides: the
// "seq/kN" sub-benchmarks run N single-RHS solves, the "batch/kN" ones
// run one N-column SteadyStateBatch — bitwise the same answers (see
// internal/thermal/batch_test.go), so the ratio is pure amortisation of
// the shared operator sweeps.
func BenchmarkThermalSteadyStateBatch(b *testing.B) {
	grids := []int{24, 64}
	if testing.Short() {
		grids = []int{24}
	}
	for _, n := range grids {
		cfg := stack.DefaultConfig()
		cfg.GridRows, cfg.GridCols = n, n
		st, err := stack.Build(cfg, stack.BankE)
		if err != nil {
			b.Fatal(err)
		}
		solver, err := thermal.NewSolver(st.Model)
		if err != nil {
			b.Fatal(err)
		}
		defer solver.Close()
		for _, k := range []int{1, 4, 8} {
			pms := make([]thermal.PowerMap, k)
			for j := range pms {
				pm := st.Model.NewPowerMap()
				for c := 0; c < 8; c++ {
					pm.AddBlock(st.Model.Grid, st.ProcMetalLayer, st.Proc.CoreRect(c), 1.5+0.5*float64((j+c)%4))
				}
				pms[j] = pm
			}
			b.Run(fmt.Sprintf("grid%d/seq/k%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, pm := range pms {
						if _, err := solver.SteadyState(pm); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.Run(fmt.Sprintf("grid%d/batch/k%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := solver.SteadyStateBatch(context.Background(), pms, thermal.BatchOpts{})
					if err != nil {
						b.Fatal(err)
					}
					for _, err := range res.Errs {
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// kernelBench builds a solver on an n×n BankE stack and hands its
// kernel façade to the per-iteration body. One sub-benchmark per grid;
// -short keeps only the 24×24 grid (the CI smoke size).
func kernelBench(b *testing.B, body func(k thermal.KernelBench)) {
	grids := []int{24, 64}
	if testing.Short() {
		grids = []int{24}
	}
	for _, n := range grids {
		b.Run(fmt.Sprintf("grid%d", n), func(b *testing.B) {
			cfg := stack.DefaultConfig()
			cfg.GridRows, cfg.GridCols = n, n
			st, err := stack.Build(cfg, stack.BankE)
			if err != nil {
				b.Fatal(err)
			}
			solver, err := thermal.NewSolver(st.Model)
			if err != nil {
				b.Fatal(err)
			}
			defer solver.Close()
			k := solver.Kernels()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body(k)
			}
		})
	}
}

// benchDotSink keeps the fused-reduction result live across iterations.
var benchDotSink float64

// BenchmarkStencilApply prices one full 7-point stencil operator apply
// w = A·z over the finest level — the sweep every CG iteration pays at
// least once, and the floor under any recurrence rearrangement.
func BenchmarkStencilApply(b *testing.B) {
	kernelBench(b, func(k thermal.KernelBench) { k.StencilApply() })
}

// BenchmarkThomasSweep prices one red-black line-smoothing sweep: a
// tridiagonal Thomas solve per planar column through the stack's
// layers, grouped four columns wide. The multigrid V-cycle is a handful
// of these per level, so smoother cost bounds the preconditioner cost.
func BenchmarkThomasSweep(b *testing.B) {
	kernelBench(b, func(k thermal.KernelBench) { k.ThomasSweep() })
}

// BenchmarkFusedReduction prices the pipelined recurrence's fused
// apply+dot pass (w = A·z with (w,z) banked over four accumulators)
// against BenchmarkStencilApply: the difference is what the fused
// reduction costs over the bare apply, and the classic path's separate
// reduction sweep is what it saves.
func BenchmarkFusedReduction(b *testing.B) {
	kernelBench(b, func(k thermal.KernelBench) { benchDotSink = k.FusedReduction() })
}

// BenchmarkGreensApply prices one reduced-order steady-state serve — the
// fused GEMV T = T_amb + G·p over the per-block Green's basis — against
// the full CG solve it replaces (BenchmarkThermalSteadyState at the same
// grid). The workers sub-benchmarks pin the determinism contract's cost:
// the chunked kernel must scale without changing a single bit of the
// result (see internal/thermal/greens_test.go), so any speedup here is
// free. The basis precompute is excluded; it is priced once by `xylem
// parbench` as the greens config's basis_build_s.
func BenchmarkGreensApply(b *testing.B) {
	grids := []int{24, 64}
	if testing.Short() {
		grids = []int{24}
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, n := range grids {
		cfg := stack.DefaultConfig()
		cfg.GridRows, cfg.GridCols = n, n
		st, err := stack.Build(cfg, stack.BankE)
		if err != nil {
			b.Fatal(err)
		}
		ev := perf.NewEvaluator()
		gb, err := ev.GreensBasisFor(context.Background(), st)
		if err != nil {
			b.Fatal(err)
		}
		solver, err := thermal.NewSolver(st.Model)
		if err != nil {
			b.Fatal(err)
		}
		defer solver.Close()
		p := make([]float64, gb.B)
		for i := range p {
			p[i] = 0.5 + 0.25*float64(i%4)
		}
		x := make([]float64, gb.Cells())
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("grid%d/workers%d", n, workers), func(b *testing.B) {
				solver.Workers = workers
				for i := 0; i < b.N; i++ {
					if err := solver.GreensApply(gb, p, x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkThermalTransientStep measures one 1 ms backward-Euler step.
func BenchmarkThermalTransientStep(b *testing.B) {
	cfg := stack.DefaultConfig()
	st, err := stack.Build(cfg, stack.BankE)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := thermal.NewSolver(st.Model)
	if err != nil {
		b.Fatal(err)
	}
	pm := st.Model.NewPowerMap()
	pm.AddBlock(st.Model.Grid, st.ProcMetalLayer, st.Proc.CoreRect(2), 4)
	ts := solver.NewTransientAmbient()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ts.Step(pm, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUSim measures simulated instructions per second of the
// 8-core simulator on a mixed workload.
func BenchmarkCPUSim(b *testing.B) {
	p, err := workload.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cpusim.DefaultConfig()
	freqs := make([]float64, cfg.Cores)
	for i := range freqs {
		freqs[i] = 2.4
	}
	const instr = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var as []cpusim.Assignment
		for c := 0; c < cfg.Cores; c++ {
			as = append(as, cpusim.Assignment{Core: c, App: p, Thread: c, Instructions: instr})
		}
		s, err := cpusim.New(cfg, freqs, as)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(instr * cfg.Cores)) // "bytes" = simulated instructions
}

// BenchmarkDRAMAccess measures the controller's transaction throughput.
func BenchmarkDRAMAccess(b *testing.B) {
	c, err := dram.NewController(dram.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = c.Access(now, uint64(rng.Int63n(1<<34))&^63, i%3 == 0)
	}
}

// BenchmarkStackBuild measures full stack assembly (floorplans, scheme,
// conductivity grids, validation).
func BenchmarkStackBuild(b *testing.B) {
	cfg := stack.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := stack.Build(cfg, stack.BankE); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks: design choices called out in DESIGN.md.

// BenchmarkAblationPillarComponents separates the two halves of the
// Xylem mechanism: TTSVs alone (prior), and full alignment+shorting
// (banke), against base — demonstrating that the D2D crossing, not the
// bulk-silicon TTSV, carries the benefit.
func BenchmarkAblationPillarComponents(b *testing.B) {
	cfg := stack.DefaultConfig()
	hot := func(kind stack.SchemeKind) float64 {
		st, err := stack.Build(cfg, kind)
		if err != nil {
			b.Fatal(err)
		}
		solver, err := thermal.NewSolver(st.Model)
		if err != nil {
			b.Fatal(err)
		}
		pm := st.Model.NewPowerMap()
		for c := 0; c < 8; c++ {
			pm.AddBlock(st.Model.Grid, st.ProcMetalLayer, st.Proc.CoreRect(c), 2)
		}
		temps, err := solver.SteadyState(pm)
		if err != nil {
			b.Fatal(err)
		}
		v, _ := temps.Max(st.ProcMetalLayer)
		return v
	}
	var base, prior, banke float64
	for i := 0; i < b.N; i++ {
		base, prior, banke = hot(stack.Base), hot(stack.Prior), hot(stack.BankE)
	}
	fmt.Printf("ablation (16 W uniform core power): base=%.2f°C, TTSVs-only=%.2f°C (Δ%.2f), aligned+shorted=%.2f°C (Δ%.2f)\n",
		base, prior, base-prior, banke, base-banke)
}

// BenchmarkAblationBlockVsGrid compares HotSpot's two modelling modes on
// the same stack and power map: block mode is orders of magnitude
// cheaper but smears the hotspot — the quantified reason §6.1 uses grid
// mode for results.
func BenchmarkAblationBlockVsGrid(b *testing.B) {
	cfg := stack.DefaultConfig()
	st, err := stack.Build(cfg, stack.BankE)
	if err != nil {
		b.Fatal(err)
	}
	gridPM := st.Model.NewPowerMap()
	blockPM := make([][]float64, 1)
	blockPM[0] = make([]float64, len(st.Proc.Blocks))
	for i, blk := range st.Proc.Blocks {
		if blk.Kind == floorplan.UnitCoreBlock && blk.Role == floorplan.RoleFPU {
			gridPM.AddBlock(st.Model.Grid, st.ProcMetalLayer, blk.Rect, 1.2)
			blockPM[0][i] = 1.2
		}
	}
	b.Run("grid", func(b *testing.B) {
		solver, err := thermal.NewSolver(st.Model)
		if err != nil {
			b.Fatal(err)
		}
		var hot float64
		for i := 0; i < b.N; i++ {
			temps, err := solver.SteadyState(gridPM)
			if err != nil {
				b.Fatal(err)
			}
			hot, _ = temps.Max(st.ProcMetalLayer)
		}
		b.ReportMetric(hot, "hotspot°C")
	})
	b.Run("block", func(b *testing.B) {
		bm, err := st.BuildBlockModel()
		if err != nil {
			b.Fatal(err)
		}
		solver, err := thermal.NewBlockSolver(bm)
		if err != nil {
			b.Fatal(err)
		}
		var hot float64
		for i := 0; i < b.N; i++ {
			temps, err := solver.SteadyState(blockPM)
			if err != nil {
				b.Fatal(err)
			}
			hot, _ = temps.MaxInLayer(0)
		}
		b.ReportMetric(hot, "hotspot°C")
	})
}

// BenchmarkAblationTTSVSize sweeps the TTSV/dummy-µbump footprint. The
// paper makes TTSVs 100 µm — "thicker than electrical TSVs ... to
// facilitate maximum heat transfer" — and suggests arrays of skinny TSVs
// as an equivalent; this ablation quantifies the size/benefit/area
// trade-off on the banke layout.
func BenchmarkAblationTTSVSize(b *testing.B) {
	cfg := stack.DefaultConfig()
	proc, err := floorplan.BuildProcDie(floorplan.DefaultProcConfig())
	if err != nil {
		b.Fatal(err)
	}
	dramFP, sg, err := floorplan.BuildDRAMSlice(floorplan.DefaultDRAMConfig())
	if err != nil {
		b.Fatal(err)
	}
	pmFor := func(st *stack.Stack) thermal.PowerMap {
		pm := st.Model.NewPowerMap()
		for c := 0; c < 8; c++ {
			pm.AddBlock(st.Model.Grid, st.ProcMetalLayer, st.Proc.CoreRect(c), 2)
		}
		return pm
	}
	hotspotFor := func(spec stack.TTSVSpec) (float64, float64) {
		scheme, err := stack.BuildScheme(stack.BankE, spec, sg, proc)
		if err != nil {
			b.Fatal(err)
		}
		st, err := stack.BuildWith(cfg, scheme, proc, dramFP, sg)
		if err != nil {
			b.Fatal(err)
		}
		solver, err := thermal.NewSolver(st.Model)
		if err != nil {
			b.Fatal(err)
		}
		temps, err := solver.SteadyState(pmFor(st))
		if err != nil {
			b.Fatal(err)
		}
		hot, _ := temps.Max(st.ProcMetalLayer)
		return hot, scheme.AreaOverhead(dramFP.Area())
	}
	baseStack, err := stack.Build(cfg, stack.Base)
	if err != nil {
		b.Fatal(err)
	}
	baseSolver, err := thermal.NewSolver(baseStack.Model)
	if err != nil {
		b.Fatal(err)
	}
	baseTemps, err := baseSolver.SteadyState(pmFor(baseStack))
	if err != nil {
		b.Fatal(err)
	}
	baseHot, _ := baseTemps.Max(baseStack.ProcMetalLayer)

	for i := 0; i < b.N; i++ {
		for _, sideUM := range []float64{50, 100, 150} {
			spec := stack.DefaultTTSVSpec()
			spec.Side = sideUM * geom.Micron
			hot, overhead := hotspotFor(spec)
			fmt.Printf("ablation TTSV side %3.0f µm: banke hotspot %.2f °C (Δ%.2f vs base), area overhead %.2f%%\n",
				sideUM, hot, baseHot-hot, overhead*100)
		}
	}
}

// BenchmarkAblationGridResolution quantifies the thermal grid's
// discretisation error against solve cost.
func BenchmarkAblationGridResolution(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("grid%d", n), func(b *testing.B) {
			cfg := stack.DefaultConfig()
			cfg.GridRows, cfg.GridCols = n, n
			st, err := stack.Build(cfg, stack.BankE)
			if err != nil {
				b.Fatal(err)
			}
			solver, err := thermal.NewSolver(st.Model)
			if err != nil {
				b.Fatal(err)
			}
			pm := st.Model.NewPowerMap()
			pm.AddBlock(st.Model.Grid, st.ProcMetalLayer,
				geom.NewRect(1e-3, 1e-3, 2e-3, 2e-3), 10)
			var hot float64
			for i := 0; i < b.N; i++ {
				temps, err := solver.SteadyState(pm)
				if err != nil {
					b.Fatal(err)
				}
				hot, _ = temps.Max(st.ProcMetalLayer)
			}
			b.ReportMetric(hot, "hotspot°C")
		})
	}
}
