package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/xylem-sim/xylem/internal/exp"
)

// cmdResume continues an interrupted sweep from its checkpoint
// directory alone: the manifest section of the newest intact snapshot
// carries everything needed to rebuild the run — which figure, which
// apps, grid, frequency ladder, batch width — so the only required flag
// is the directory itself. Worker count is free: results land in
// serial-order slots regardless of schedule, so a sweep checkpointed
// under -workers 8 resumes correctly under -workers 1.
func cmdResume(args []string) error {
	fs := flag.NewFlagSet("resume", flag.ContinueOnError)
	dir := fs.String("checkpoint", "", "checkpoint directory to resume from (required)")
	workers := fs.Int("workers", 0, "concurrent experiment points (0 = all CPUs, 1 = serial)")
	every := fs.Int("ckpt-every", 0, "ladder rungs between checkpoint snapshots (0 = every rung)")
	retries := fs.Int("retries", 0, "retry failed sweep points down a degradation ladder this many times (0 = off)")
	quarantine := fs.Bool("quarantine", false, "skip points that exhaust their retries instead of failing the sweep")
	retrySeed := fs.Uint64("retry-seed", 1, "seed for the deterministic retry-backoff jitter")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus/JSON metrics and a trace dump on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("resume: -checkpoint DIR required")
	}
	m, err := exp.ReadManifest(*dir)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	o := m.Options()
	o.Workers = *workers
	reg, err := startMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	o.Obs = reg
	o.Checkpoint = &exp.CkptConfig{Dir: *dir, Every: *every, Resume: true, Label: m.Label}
	if *retries > 0 || *quarantine {
		o.Supervise = &exp.SuperviseConfig{Retries: *retries, Seed: *retrySeed, Quarantine: *quarantine}
	}
	r, err := exp.NewRunner(o)
	if err != nil {
		return err
	}
	fmt.Printf("resuming %q from %s\n", m.Label, *dir)
	if m.Label == "all" {
		if err := cmdAllFigures(r); err != nil {
			return err
		}
	} else if err := runFigure(r, m.Label); err != nil {
		return err
	}
	s := r.SweepStats()
	fmt.Printf("cumulative sweep work incl. previous incarnations: %d solves, %d CG iters, %d V-cycles\n",
		s.Solves, s.SolveIters, s.VCycles)
	return nil
}

// cmdResumeSmoke is the CI gate for the checkpoint/resume engine: it
// runs one figure three times in-process — uninterrupted, killed by the
// crash-injection hook at a checkpoint boundary, and resumed from the
// snapshots the killed run left behind — and fails unless the resumed
// table is byte-identical to the uninterrupted one (and, at -workers 1,
// the combined solver-work counters match exactly too).
func cmdResumeSmoke(args []string) error {
	fs := flag.NewFlagSet("resume-smoke", flag.ContinueOnError)
	id := fs.String("id", "7", "figure id to exercise (see `xylem figure`)")
	kill := fs.Int("kill-after", 3, "snapshot writes before the injected crash")
	c := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, err := c.options()
	if err != nil {
		return err
	}
	// The smoke test manages its own checkpoint directory and needs the
	// baseline genuinely bare.
	o.Obs = nil
	o.Checkpoint = nil
	dir, err := os.MkdirTemp("", "xylem-resume-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	render := func(o exp.Options) (*exp.Runner, string, error) {
		r, err := exp.NewRunner(o)
		if err != nil {
			return nil, "", err
		}
		var b strings.Builder
		tableOut = &b
		defer func() { tableOut = os.Stdout }()
		err = runFigureTable(r, *id)
		return r, b.String(), err
	}

	baseRunner, baseStr, err := render(o)
	if err != nil {
		return err
	}

	killedOpts := o
	killedOpts.Checkpoint = &exp.CkptConfig{Dir: dir, KillAfterSaves: *kill, Label: *id}
	if _, _, err := render(killedOpts); !errors.Is(err, exp.ErrKilled) {
		return fmt.Errorf("resume-smoke: killed run returned %v, want the injected crash", err)
	}

	resumedOpts := o
	resumedOpts.Checkpoint = &exp.CkptConfig{Dir: dir, Resume: true, Label: *id}
	resumedRunner, resumedStr, err := render(resumedOpts)
	if err != nil {
		return fmt.Errorf("resume-smoke: resume failed: %w", err)
	}
	if resumedStr != baseStr {
		return fmt.Errorf("resume-smoke: figure %s resumed table differs from uninterrupted run (%d vs %d bytes)",
			*id, len(resumedStr), len(baseStr))
	}

	statsNote := "table bytes only (workers != 1)"
	if o.Workers == 1 {
		// The crash fires synchronously at a save boundary, so at
		// workers=1 the snapshot covers exactly the completed work and the
		// combined counters must reproduce the uninterrupted run. Activity
		// runs are excluded: the resuming process starts with a cold
		// activity cache and legitimately reruns those (deterministically).
		want, got := baseRunner.SweepStats(), resumedRunner.SweepStats()
		want.ActivityRuns, got.ActivityRuns = 0, 0
		if want != got {
			return fmt.Errorf("resume-smoke: combined solver work differs\nuninterrupted: %+v\nresumed:       %+v", want, got)
		}
		statsNote = fmt.Sprintf("combined counters exact (%d solves, %d CG iters)", got.Solves, got.SolveIters)
	}
	fmt.Printf("resume-smoke: figure %s byte-identical after kill@%d+resume (%d bytes); %s\n",
		*id, *kill, len(baseStr), statsNote)
	return nil
}
