package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/xylem-sim/xylem/internal/ckpt"
	"github.com/xylem-sim/xylem/internal/exp"
)

// parbenchConfig is one timed Figure 7 sweep in the comparison matrix.
type parbenchConfig struct {
	Name     string  `json:"name"`
	Precond  string  `json:"precond"`
	Workers  int     `json:"workers"`
	Batch    int     `json:"batch"`
	Warm     bool    `json:"warm"`
	WallS    float64 `json:"wall_s"`
	Solves   int     `json:"solves"`
	CGIters  int64   `json:"cg_iters"`
	VCycles  int64   `json:"vcycles"`
	Degraded int     `json:"degraded_solves"`
	IterHist string  `json:"iter_hist"`
	// Batch-path accounting (zero for per-point configs): batched
	// multi-RHS calls issued, columns retired before the batch finished,
	// and the occupancy histogram of columns per call.
	BatchedSolves   int    `json:"batched_solves,omitempty"`
	DeflatedColumns int64  `json:"deflated_columns,omitempty"`
	BatchOcc        string `json:"batch_occupancy,omitempty"`
}

// parbenchReport is the JSON summary written by `xylem parbench`: the
// same Figure 7 sweep run under both preconditioners and with parallel
// kernels, so the multigrid preconditioner, the warm-started frequency
// ladder and the parallel engine can each be credited (or blamed)
// separately — plus the identity checks both paths promise: multigrid
// must reproduce the Jacobi tables at print precision, and the parallel
// run must reproduce the serial run byte-for-byte.
type parbenchReport struct {
	Grid       int       `json:"grid"`
	Apps       []string  `json:"apps"`
	FreqsGHz   []float64 `json:"freqs_ghz"`
	Workers    int       `json:"workers"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Configs []parbenchConfig `json:"configs"`

	// The headline comparison: total CG iterations for the warm serial
	// sweep under each preconditioner, and their ratio.
	CGItersJacobi   int64   `json:"cg_iters_jacobi"`
	CGItersMG       int64   `json:"cg_iters_mg"`
	MGVCycles       int64   `json:"mg_vcycles"`
	MGIterReduction float64 `json:"mg_iter_reduction"`

	// SpeedupMG compares like with like: MG serial warm vs Jacobi
	// serial warm. SpeedupParallel is MG parallel warm vs MG serial warm.
	// SpeedupBatch is batched MG serial vs per-point MG serial — the
	// multi-RHS amortisation alone, no kernel parallelism involved.
	SpeedupMG       float64 `json:"speedup_mg"`
	SpeedupParallel float64 `json:"speedup_parallel"`
	BatchWidth      int     `json:"batch_width"`
	SpeedupBatch    float64 `json:"speedup_batch"`

	// TablesMatchJacobi: the MG sweep rendered the same tables as the
	// Jacobi sweep (print precision absorbs the tolerance-level solver
	// differences). TablesByteIdenticalWorkers: the parallel MG sweep
	// rendered byte-identical tables to the serial MG sweep.
	// TablesMatchBatch: the batched MG sweep rendered byte-identical
	// tables to the per-point MG sweep (the batch contract is bitwise,
	// so this is equality, not print-precision). The BatchWorkers variant
	// compares batched serial against batched parallel.
	TablesMatchJacobi               bool `json:"tables_match_jacobi"`
	TablesByteIdenticalWorkers      bool `json:"tables_byte_identical_workers"`
	TablesMatchBatch                bool `json:"tables_match_batch"`
	TablesByteIdenticalBatchWorkers bool `json:"tables_byte_identical_batch_workers"`
}

// cmdParbench times the Figure 7 temperature sweep under five engine
// configurations, each on a fresh Runner (no solver state carries over):
//
//  1. jacobi:            Workers=1, warm-started, Jacobi-preconditioned CG
//  2. mg:                Workers=1, warm-started, multigrid-preconditioned CG
//  3. mg-parallel:       Workers=N, warm-started, multigrid
//  4. mg-batch:          Workers=1, multigrid, batched multi-RHS solves
//  5. mg-batch-parallel: Workers=N, multigrid, batched multi-RHS solves
//
// Workload activity (the cpusim traces) is identical across all five —
// it depends on the simulated architecture, never on the solver — so an
// untimed warm-up pass populates one shared activity cache first and
// every timed run draws from it. The walls therefore price exactly what
// parbench compares: solver configurations, not repeated identical
// trace simulation.
//
// It verifies the MG tables match Jacobi's at print precision, and that
// the parallel and batched runs are byte-identical to the serial
// per-point MG run, then writes a JSON summary with wall times,
// iteration totals and V-cycle counts. With -check it exits non-zero
// when multigrid fails to cut iterations or any table check fails — the
// CI smoke gate (timing ratios are reported but never gated; wall time
// is too noisy in CI).
func cmdParbench(args []string) error {
	fs := flag.NewFlagSet("parbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_parallel.json", "write the JSON summary to this path")
	check := fs.Bool("check", false, "exit non-zero unless MG cuts CG iterations and tables match")
	c := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	*c.precond = ""
	o, err := c.options()
	if err != nil {
		return err
	}
	par := o.Workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// Batched configs default to one batch per sweep — every app of a
	// scheme's sweep in a single multi-RHS call (best occupancy, no
	// single-column remainder) — floored at the 4-wide amortisation
	// sweet spot.
	width := o.BatchWidth
	if width <= 1 {
		width = len(o.Apps)
		if width < 4 {
			width = 4
		}
	}

	// The untimed warm-up run: populates the shared activity cache (and
	// is otherwise discarded).
	warm, err := exp.NewRunner(o)
	if err != nil {
		return err
	}
	if _, _, err := warm.Figure7(); err != nil {
		return fmt.Errorf("warm-up run: %w", err)
	}

	run := func(name, precond string, workers, batch int) (parbenchConfig, string, error) {
		oo := o
		oo.Workers = workers
		oo.Precond = precond
		oo.BatchWidth = batch
		r, err := exp.NewRunner(oo)
		if err != nil {
			return parbenchConfig{}, "", err
		}
		r.Sys.Ev.ShareActivityCache(warm.Sys.Ev)
		start := time.Now()
		_, tab, err := r.Figure7()
		if err != nil {
			return parbenchConfig{}, "", err
		}
		wall := time.Since(start)
		st := r.Sys.Ev.Stats()
		cfg := parbenchConfig{
			Name: name, Precond: precond, Workers: workers, Batch: batch, Warm: true,
			WallS: wall.Seconds(), Solves: st.Solves, CGIters: st.SolveIters,
			VCycles: st.VCycles, Degraded: st.DegradedSolves,
			IterHist:      st.IterHist.String(),
			BatchedSolves: st.BatchedSolves, DeflatedColumns: st.DeflatedColumns,
		}
		if st.BatchedSolves > 0 {
			cfg.BatchOcc = st.BatchOcc.String()
		}
		return cfg, tab.String(), nil
	}

	fmt.Printf("parbench: Figure 7 on a %dx%d grid, %d workers (GOMAXPROCS %d), batch width %d\n",
		o.GridRows, o.GridCols, par, runtime.GOMAXPROCS(0), width)

	show := func(c parbenchConfig) {
		fmt.Printf("  %-17s %8.2fs  %6d CG iters  %6d V-cycles  iters/solve %s\n",
			c.Name, c.WallS, c.CGIters, c.VCycles, c.IterHist)
	}

	jac, jacTab, err := run("jacobi", "jacobi", 1, 0)
	if err != nil {
		return fmt.Errorf("jacobi run: %w", err)
	}
	show(jac)
	mg, mgTab, err := run("mg", "mg", 1, 0)
	if err != nil {
		return fmt.Errorf("mg run: %w", err)
	}
	show(mg)
	mgPar, mgParTab, err := run("mg-parallel", "mg", par, 0)
	if err != nil {
		return fmt.Errorf("mg parallel run: %w", err)
	}
	show(mgPar)
	mgBatch, mgBatchTab, err := run("mg-batch", "mg", 1, width)
	if err != nil {
		return fmt.Errorf("mg batch run: %w", err)
	}
	show(mgBatch)
	mgBatchPar, mgBatchParTab, err := run("mg-batch-parallel", "mg", par, width)
	if err != nil {
		return fmt.Errorf("mg batch parallel run: %w", err)
	}
	show(mgBatchPar)

	rep := parbenchReport{
		Grid:       o.GridRows,
		Apps:       o.Apps,
		FreqsGHz:   o.Freqs,
		Workers:    par,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Configs:    []parbenchConfig{jac, mg, mgPar, mgBatch, mgBatchPar},

		CGItersJacobi:   jac.CGIters,
		CGItersMG:       mg.CGIters,
		MGVCycles:       mg.VCycles,
		SpeedupMG:       jac.WallS / mg.WallS,
		SpeedupParallel: mg.WallS / mgPar.WallS,
		BatchWidth:      width,
		SpeedupBatch:    mg.WallS / mgBatch.WallS,

		TablesMatchJacobi:               mgTab == jacTab,
		TablesByteIdenticalWorkers:      mgTab == mgParTab,
		TablesMatchBatch:                mgTab == mgBatchTab,
		TablesByteIdenticalBatchWorkers: mgBatchTab == mgBatchParTab,
	}
	if mg.CGIters > 0 {
		rep.MGIterReduction = float64(jac.CGIters) / float64(mg.CGIters)
	}

	fmt.Printf("  multigrid: %.1fx fewer CG iterations, %.2fx faster serial; parallel %.2fx on top; batched %.2fx at width %d\n",
		rep.MGIterReduction, rep.SpeedupMG, rep.SpeedupParallel, rep.SpeedupBatch, width)
	if rep.TablesMatchJacobi {
		fmt.Println("  tables match jacobi at print precision")
	} else {
		fmt.Println("  WARNING: MG tables do NOT match the Jacobi tables")
	}
	if rep.TablesByteIdenticalWorkers {
		fmt.Println("  tables byte-identical serial vs parallel")
	} else {
		fmt.Println("  WARNING: parallel tables are NOT byte-identical to serial")
	}
	if rep.TablesMatchBatch {
		fmt.Println("  tables byte-identical per-point vs batched")
	} else {
		fmt.Println("  WARNING: batched tables are NOT byte-identical to per-point")
	}
	if rep.TablesByteIdenticalBatchWorkers {
		fmt.Println("  tables byte-identical batched serial vs batched parallel")
	} else {
		fmt.Println("  WARNING: batched parallel tables are NOT byte-identical to batched serial")
	}

	err = ckpt.WriteFileAtomic(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		if rep.CGItersMG >= rep.CGItersJacobi {
			return fmt.Errorf("check failed: MG used %d CG iterations, not below Jacobi's %d",
				rep.CGItersMG, rep.CGItersJacobi)
		}
		if !rep.TablesMatchJacobi {
			return fmt.Errorf("check failed: MG tables do not match Jacobi tables")
		}
		if !rep.TablesByteIdenticalWorkers {
			return fmt.Errorf("check failed: parallel tables not byte-identical to serial")
		}
		if !rep.TablesMatchBatch {
			return fmt.Errorf("check failed: batched tables not byte-identical to per-point")
		}
		if !rep.TablesByteIdenticalBatchWorkers {
			return fmt.Errorf("check failed: batched parallel tables not byte-identical to batched serial")
		}
	}
	return nil
}
