package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/xylem-sim/xylem/internal/ckpt"
	"github.com/xylem-sim/xylem/internal/exp"
	"github.com/xylem-sim/xylem/internal/stack"
)

// parbenchConfig is one timed Figure 7 sweep in the comparison matrix.
type parbenchConfig struct {
	Name     string  `json:"name"`
	Precond  string  `json:"precond"`
	CG       string  `json:"cg,omitempty"`
	Workers  int     `json:"workers"`
	Batch    int     `json:"batch"`
	Warm     bool    `json:"warm"`
	WallS    float64 `json:"wall_s"`
	Solves   int     `json:"solves"`
	CGIters  int64   `json:"cg_iters"`
	VCycles  int64   `json:"vcycles"`
	Degraded int     `json:"degraded_solves"`
	IterHist string  `json:"iter_hist"`
	// Pipelined-CG drift-control accounting (zero for classic configs):
	// periodic true-residual replacements and convergence drift-guard
	// corrections across the sweep's solves.
	Replacements     int64 `json:"residual_replacements,omitempty"`
	DriftCorrections int64 `json:"drift_corrections,omitempty"`
	// Batch-path accounting (zero for per-point configs): batched
	// multi-RHS calls issued, columns retired before the batch finished,
	// and the occupancy histogram of columns per call.
	BatchedSolves   int    `json:"batched_solves,omitempty"`
	DeflatedColumns int64  `json:"deflated_columns,omitempty"`
	BatchOcc        string `json:"batch_occupancy,omitempty"`
	// Green's fast-path accounting (zero for full-solve configs):
	// reduced-model queries served, CG fallbacks, bases built, the wall
	// spent on the basis precompute (reported separately — it is excluded
	// from WallS, which times only the sweep), and the mean per-query
	// wall. One "query" is one steady-state serve: a reduced fixed-point
	// iteration on the fast path, one CG solve otherwise.
	GreensHits   int     `json:"greens_hits,omitempty"`
	GreensMisses int     `json:"greens_misses,omitempty"`
	BasisBuilds  int     `json:"basis_builds,omitempty"`
	BasisBuildS  float64 `json:"basis_build_s,omitempty"`
	PerQueryMs   float64 `json:"per_query_ms,omitempty"`
}

// parbenchReport is the JSON summary written by `xylem parbench`: the
// same Figure 7 sweep run under both preconditioners and with parallel
// kernels, so the multigrid preconditioner, the warm-started frequency
// ladder and the parallel engine can each be credited (or blamed)
// separately — plus the identity checks both paths promise: multigrid
// must reproduce the Jacobi tables at print precision, and the parallel
// run must reproduce the serial run byte-for-byte.
type parbenchReport struct {
	Grid       int       `json:"grid"`
	Apps       []string  `json:"apps"`
	FreqsGHz   []float64 `json:"freqs_ghz"`
	Workers    int       `json:"workers"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Configs []parbenchConfig `json:"configs"`

	// The headline comparison: total CG iterations for the warm serial
	// sweep under each preconditioner, and their ratio.
	CGItersJacobi   int64   `json:"cg_iters_jacobi"`
	CGItersMG       int64   `json:"cg_iters_mg"`
	MGVCycles       int64   `json:"mg_vcycles"`
	MGIterReduction float64 `json:"mg_iter_reduction"`

	// SpeedupMG compares like with like: MG serial warm vs Jacobi
	// serial warm. SpeedupParallel is MG parallel warm vs MG serial warm.
	// SpeedupBatch is batched MG serial vs per-point MG serial — the
	// multi-RHS amortisation alone, no kernel parallelism involved.
	// SpeedupPipelined is pipelined-CG MG serial vs classic MG serial —
	// the single fused reduction plus restructured kernels, on one worker.
	SpeedupMG        float64 `json:"speedup_mg"`
	SpeedupParallel  float64 `json:"speedup_parallel"`
	BatchWidth       int     `json:"batch_width"`
	SpeedupBatch     float64 `json:"speedup_batch"`
	SpeedupPipelined float64 `json:"speedup_pipelined"`

	// TablesMatchJacobi: the MG sweep rendered the same tables as the
	// Jacobi sweep (print precision absorbs the tolerance-level solver
	// differences). TablesByteIdenticalWorkers: the parallel MG sweep
	// rendered byte-identical tables to the serial MG sweep.
	// TablesMatchBatch: the batched MG sweep rendered byte-identical
	// tables to the per-point MG sweep (the batch contract is bitwise,
	// so this is equality, not print-precision). The BatchWorkers variant
	// compares batched serial against batched parallel.
	// TablesMatchPipelined: the pipelined-CG MG sweep rendered the same
	// tables as the classic MG sweep (print precision — the pipelined
	// recurrence converges to the same tolerance but is not bitwise-equal
	// to the classic recurrence). TablesMatchPipelinedBatch: the batched
	// pipelined sweep rendered byte-identical tables to the per-point
	// pipelined sweep (the batch contract is bitwise on either recurrence).
	TablesMatchJacobi               bool `json:"tables_match_jacobi"`
	TablesByteIdenticalWorkers      bool `json:"tables_byte_identical_workers"`
	TablesMatchBatch                bool `json:"tables_match_batch"`
	TablesByteIdenticalBatchWorkers bool `json:"tables_byte_identical_batch_workers"`
	TablesMatchPipelined            bool `json:"tables_match_pipelined"`
	TablesMatchPipelinedBatch       bool `json:"tables_match_pipelined_batch"`

	// The Green's fast-path comparison: per-query wall for the reduced
	// model vs the warm serial MG sweep (the basis precompute is amortised
	// and reported separately in the config's BasisBuildS), and whether
	// the reduced sweep rendered the same tables as MG at print precision.
	PerQueryMsMG      float64 `json:"per_query_ms_mg"`
	PerQueryMsGreens  float64 `json:"per_query_ms_greens"`
	GreensBasisBuildS float64 `json:"greens_basis_build_s"`
	SpeedupGreens     float64 `json:"speedup_greens"`
	TablesMatchGreens bool    `json:"tables_match_greens"`
}

// cmdParbench times the Figure 7 temperature sweep under eight engine
// configurations, each on a fresh Runner (no solver state carries over):
//
//  1. jacobi:             Workers=1, warm-started, Jacobi-preconditioned CG
//  2. mg:                 Workers=1, warm-started, multigrid-preconditioned CG
//  3. mg-parallel:        Workers=N, warm-started, multigrid
//  4. mg-batch:           Workers=1, multigrid, batched multi-RHS solves
//  5. mg-batch-parallel:  Workers=N, multigrid, batched multi-RHS solves
//  6. mg-pipelined:       Workers=1, multigrid, single-reduction pipelined CG
//  7. mg-pipelined-batch: Workers=1, multigrid, pipelined CG, batched solves
//  8. greens:             Workers=1, Green's-function reduced-order serving
//     (basis precompute paid before the timer starts
//     and reported separately)
//
// Workload activity (the cpusim traces) is identical across all eight —
// it depends on the simulated architecture, never on the solver — so an
// untimed warm-up pass populates one shared activity cache first and
// every timed run draws from it. The walls therefore price exactly what
// parbench compares: solver configurations, not repeated identical
// trace simulation.
//
// It verifies the MG tables match Jacobi's at print precision, and that
// the parallel and batched runs are byte-identical to the serial
// per-point MG run, then writes a JSON summary with wall times,
// iteration totals and V-cycle counts. With -check it exits non-zero
// when multigrid fails to cut iterations or any table check fails — the
// CI smoke gate (timing ratios are reported but never gated; wall time
// is too noisy in CI).
func cmdParbench(args []string) error {
	fs := flag.NewFlagSet("parbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_parallel.json", "write the JSON summary to this path")
	check := fs.Bool("check", false, "exit non-zero unless MG cuts CG iterations and tables match")
	c := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	*c.precond = ""
	o, err := c.options()
	if err != nil {
		return err
	}
	par := o.Workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// Batched configs default to one batch per sweep — every app of a
	// scheme's sweep in a single multi-RHS call (best occupancy, no
	// single-column remainder) — floored at the 4-wide amortisation
	// sweet spot.
	width := o.BatchWidth
	if width <= 1 {
		width = len(o.Apps)
		if width < 4 {
			width = 4
		}
	}

	// The untimed warm-up run: populates the shared activity cache (and
	// is otherwise discarded).
	warm, err := exp.NewRunner(o)
	if err != nil {
		return err
	}
	if _, _, err := warm.Figure7(); err != nil {
		return fmt.Errorf("warm-up run: %w", err)
	}

	run := func(name, precond, cg string, workers, batch int, fastpath string) (parbenchConfig, string, error) {
		oo := o
		oo.Workers = workers
		oo.Precond = precond
		oo.CG = cg
		oo.BatchWidth = batch
		oo.FastPath = fastpath
		r, err := exp.NewRunner(oo)
		if err != nil {
			return parbenchConfig{}, "", err
		}
		r.Sys.Ev.ShareActivityCache(warm.Sys.Ev)
		// Fast-path configs pay their basis precompute up front, outside
		// the timed sweep — that is the amortisation the fast path sells —
		// and the precompute wall is reported separately.
		var basisWall time.Duration
		if fastpath != "" {
			bs := time.Now()
			for _, kind := range stack.AllSchemes {
				st := r.Sys.Stack(kind)
				if st == nil {
					continue
				}
				if _, err := r.Sys.Ev.GreensBasisFor(context.Background(), st); err != nil {
					return parbenchConfig{}, "", fmt.Errorf("basis build for %v: %w", kind, err)
				}
			}
			basisWall = time.Since(bs)
		}
		start := time.Now()
		_, tab, err := r.Figure7()
		if err != nil {
			return parbenchConfig{}, "", err
		}
		wall := time.Since(start)
		st := r.Sys.Ev.Stats()
		cfg := parbenchConfig{
			Name: name, Precond: precond, CG: cg, Workers: workers, Batch: batch, Warm: true,
			WallS: wall.Seconds(), Solves: st.Solves, CGIters: st.SolveIters,
			VCycles: st.VCycles, Degraded: st.DegradedSolves,
			IterHist:     st.IterHist.String(),
			Replacements: st.ResidualReplacements, DriftCorrections: st.DriftCorrections,
			BatchedSolves: st.BatchedSolves, DeflatedColumns: st.DeflatedColumns,
			GreensHits: st.GreensHits, GreensMisses: st.GreensMisses,
			BasisBuilds: st.BasisBuilds, BasisBuildS: basisWall.Seconds(),
		}
		if st.BatchedSolves > 0 {
			cfg.BatchOcc = st.BatchOcc.String()
		}
		if st.GreensHits > 0 {
			cfg.PerQueryMs = wall.Seconds() * 1000 / float64(st.GreensHits)
		} else if st.Solves > 0 {
			cfg.PerQueryMs = wall.Seconds() * 1000 / float64(st.Solves)
		}
		return cfg, tab.String(), nil
	}

	fmt.Printf("parbench: Figure 7 on a %dx%d grid, %d workers (GOMAXPROCS %d), batch width %d\n",
		o.GridRows, o.GridCols, par, runtime.GOMAXPROCS(0), width)

	show := func(c parbenchConfig) {
		fmt.Printf("  %-17s %8.2fs  %6d CG iters  %6d V-cycles  iters/solve %s\n",
			c.Name, c.WallS, c.CGIters, c.VCycles, c.IterHist)
	}

	jac, jacTab, err := run("jacobi", "jacobi", "", 1, 0, "")
	if err != nil {
		return fmt.Errorf("jacobi run: %w", err)
	}
	show(jac)
	mg, mgTab, err := run("mg", "mg", "", 1, 0, "")
	if err != nil {
		return fmt.Errorf("mg run: %w", err)
	}
	show(mg)
	mgPar, mgParTab, err := run("mg-parallel", "mg", "", par, 0, "")
	if err != nil {
		return fmt.Errorf("mg parallel run: %w", err)
	}
	show(mgPar)
	mgBatch, mgBatchTab, err := run("mg-batch", "mg", "", 1, width, "")
	if err != nil {
		return fmt.Errorf("mg batch run: %w", err)
	}
	show(mgBatch)
	mgBatchPar, mgBatchParTab, err := run("mg-batch-parallel", "mg", "", par, width, "")
	if err != nil {
		return fmt.Errorf("mg batch parallel run: %w", err)
	}
	show(mgBatchPar)
	mgPipe, mgPipeTab, err := run("mg-pipelined", "mg", "pipelined", 1, 0, "")
	if err != nil {
		return fmt.Errorf("mg pipelined run: %w", err)
	}
	show(mgPipe)
	mgPipeBatch, mgPipeBatchTab, err := run("mg-pipelined-batch", "mg", "pipelined", 1, width, "")
	if err != nil {
		return fmt.Errorf("mg pipelined batch run: %w", err)
	}
	show(mgPipeBatch)
	greens, greensTab, err := run("greens", "", "", 1, 0, "on")
	if err != nil {
		return fmt.Errorf("greens run: %w", err)
	}
	show(greens)
	fmt.Printf("  %-17s basis precompute %.2fs (%d builds), %d reduced queries at %.3f ms/query, %d CG fallbacks\n",
		"", greens.BasisBuildS, greens.BasisBuilds, greens.GreensHits, greens.PerQueryMs, greens.GreensMisses)

	rep := parbenchReport{
		Grid:       o.GridRows,
		Apps:       o.Apps,
		FreqsGHz:   o.Freqs,
		Workers:    par,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Configs:    []parbenchConfig{jac, mg, mgPar, mgBatch, mgBatchPar, mgPipe, mgPipeBatch, greens},

		CGItersJacobi:    jac.CGIters,
		CGItersMG:        mg.CGIters,
		MGVCycles:        mg.VCycles,
		SpeedupMG:        jac.WallS / mg.WallS,
		SpeedupParallel:  mg.WallS / mgPar.WallS,
		BatchWidth:       width,
		SpeedupBatch:     mg.WallS / mgBatch.WallS,
		SpeedupPipelined: mg.WallS / mgPipe.WallS,

		TablesMatchJacobi:               mgTab == jacTab,
		TablesByteIdenticalWorkers:      mgTab == mgParTab,
		TablesMatchBatch:                mgTab == mgBatchTab,
		TablesByteIdenticalBatchWorkers: mgBatchTab == mgBatchParTab,
		TablesMatchPipelined:            mgPipeTab == mgTab,
		TablesMatchPipelinedBatch:       mgPipeBatchTab == mgPipeTab,

		PerQueryMsMG:      mg.PerQueryMs,
		PerQueryMsGreens:  greens.PerQueryMs,
		GreensBasisBuildS: greens.BasisBuildS,
		TablesMatchGreens: greensTab == mgTab,
	}
	if mg.CGIters > 0 {
		rep.MGIterReduction = float64(jac.CGIters) / float64(mg.CGIters)
	}
	if greens.PerQueryMs > 0 {
		rep.SpeedupGreens = mg.PerQueryMs / greens.PerQueryMs
	}

	fmt.Printf("  multigrid: %.1fx fewer CG iterations, %.2fx faster serial; parallel %.2fx on top; batched %.2fx at width %d\n",
		rep.MGIterReduction, rep.SpeedupMG, rep.SpeedupParallel, rep.SpeedupBatch, width)
	fmt.Printf("  pipelined CG: %.2fx over classic MG serial (%d residual replacements, %d drift corrections)\n",
		rep.SpeedupPipelined, mgPipe.Replacements, mgPipe.DriftCorrections)
	if rep.TablesMatchJacobi {
		fmt.Println("  tables match jacobi at print precision")
	} else {
		fmt.Println("  WARNING: MG tables do NOT match the Jacobi tables")
	}
	if rep.TablesByteIdenticalWorkers {
		fmt.Println("  tables byte-identical serial vs parallel")
	} else {
		fmt.Println("  WARNING: parallel tables are NOT byte-identical to serial")
	}
	if rep.TablesMatchBatch {
		fmt.Println("  tables byte-identical per-point vs batched")
	} else {
		fmt.Println("  WARNING: batched tables are NOT byte-identical to per-point")
	}
	if rep.TablesByteIdenticalBatchWorkers {
		fmt.Println("  tables byte-identical batched serial vs batched parallel")
	} else {
		fmt.Println("  WARNING: batched parallel tables are NOT byte-identical to batched serial")
	}
	if rep.TablesMatchPipelined {
		fmt.Println("  tables match pipelined at print precision")
	} else {
		fmt.Println("  WARNING: pipelined tables do NOT match the classic MG tables")
	}
	if rep.TablesMatchPipelinedBatch {
		fmt.Println("  tables byte-identical pipelined per-point vs pipelined batched")
	} else {
		fmt.Println("  WARNING: batched pipelined tables are NOT byte-identical to per-point pipelined")
	}
	fmt.Printf("  greens fast path: %.3f ms/query vs MG's %.3f ms/query (%.1fx)\n",
		rep.PerQueryMsGreens, rep.PerQueryMsMG, rep.SpeedupGreens)
	if rep.TablesMatchGreens {
		fmt.Println("  tables match greens fast path at print precision")
	} else {
		fmt.Println("  WARNING: greens fast-path tables do NOT match the MG tables")
	}

	err = ckpt.WriteFileAtomic(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		if rep.CGItersMG >= rep.CGItersJacobi {
			return fmt.Errorf("check failed: MG used %d CG iterations, not below Jacobi's %d",
				rep.CGItersMG, rep.CGItersJacobi)
		}
		if !rep.TablesMatchJacobi {
			return fmt.Errorf("check failed: MG tables do not match Jacobi tables")
		}
		if !rep.TablesByteIdenticalWorkers {
			return fmt.Errorf("check failed: parallel tables not byte-identical to serial")
		}
		if !rep.TablesMatchBatch {
			return fmt.Errorf("check failed: batched tables not byte-identical to per-point")
		}
		if !rep.TablesByteIdenticalBatchWorkers {
			return fmt.Errorf("check failed: batched parallel tables not byte-identical to batched serial")
		}
		if !rep.TablesMatchPipelined {
			return fmt.Errorf("check failed: pipelined tables do not match classic MG tables")
		}
		if !rep.TablesMatchPipelinedBatch {
			return fmt.Errorf("check failed: batched pipelined tables not byte-identical to per-point pipelined")
		}
		if !rep.TablesMatchGreens {
			return fmt.Errorf("check failed: greens fast-path tables do not match MG tables")
		}
		if rep.SpeedupGreens < 5 {
			return fmt.Errorf("check failed: greens per-query speedup %.2fx, want >= 5x (%.3f ms vs %.3f ms)",
				rep.SpeedupGreens, rep.PerQueryMsGreens, rep.PerQueryMsMG)
		}
	}
	return nil
}
