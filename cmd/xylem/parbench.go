package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/xylem-sim/xylem/internal/exp"
)

// parbenchConfig is one timed Figure 7 sweep in the comparison matrix.
type parbenchConfig struct {
	Name     string  `json:"name"`
	Precond  string  `json:"precond"`
	Workers  int     `json:"workers"`
	Warm     bool    `json:"warm"`
	WallS    float64 `json:"wall_s"`
	Solves   int     `json:"solves"`
	CGIters  int64   `json:"cg_iters"`
	VCycles  int64   `json:"vcycles"`
	Degraded int     `json:"degraded_solves"`
	IterHist string  `json:"iter_hist"`
}

// parbenchReport is the JSON summary written by `xylem parbench`: the
// same Figure 7 sweep run under both preconditioners and with parallel
// kernels, so the multigrid preconditioner, the warm-started frequency
// ladder and the parallel engine can each be credited (or blamed)
// separately — plus the identity checks both paths promise: multigrid
// must reproduce the Jacobi tables at print precision, and the parallel
// run must reproduce the serial run byte-for-byte.
type parbenchReport struct {
	Grid       int       `json:"grid"`
	Apps       []string  `json:"apps"`
	FreqsGHz   []float64 `json:"freqs_ghz"`
	Workers    int       `json:"workers"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Configs []parbenchConfig `json:"configs"`

	// The headline comparison: total CG iterations for the warm serial
	// sweep under each preconditioner, and their ratio.
	CGItersJacobi   int64   `json:"cg_iters_jacobi"`
	CGItersMG       int64   `json:"cg_iters_mg"`
	MGVCycles       int64   `json:"mg_vcycles"`
	MGIterReduction float64 `json:"mg_iter_reduction"`

	// SpeedupMG compares like with like: MG serial warm vs Jacobi
	// serial warm. SpeedupParallel is MG parallel warm vs MG serial warm.
	SpeedupMG       float64 `json:"speedup_mg"`
	SpeedupParallel float64 `json:"speedup_parallel"`

	// TablesMatchJacobi: the MG sweep rendered the same tables as the
	// Jacobi sweep (print precision absorbs the tolerance-level solver
	// differences). TablesByteIdenticalWorkers: the parallel MG sweep
	// rendered byte-identical tables to the serial MG sweep.
	TablesMatchJacobi          bool `json:"tables_match_jacobi"`
	TablesByteIdenticalWorkers bool `json:"tables_byte_identical_workers"`
}

// cmdParbench times the Figure 7 temperature sweep under three engine
// configurations, each on a fresh Runner so no caches carry over:
//
//  1. jacobi:      Workers=1, warm-started, Jacobi-preconditioned CG
//  2. mg:          Workers=1, warm-started, multigrid-preconditioned CG
//  3. mg-parallel: Workers=N, warm-started, multigrid
//
// It verifies the MG tables match Jacobi's at print precision and the
// parallel tables are byte-identical to the serial ones, then writes a
// JSON summary with wall times, iteration totals and V-cycle counts.
// With -check it exits non-zero when multigrid fails to cut iterations
// or either table check fails — the CI smoke gate.
func cmdParbench(args []string) error {
	fs := flag.NewFlagSet("parbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_parallel.json", "write the JSON summary to this path")
	check := fs.Bool("check", false, "exit non-zero unless MG cuts CG iterations and tables match")
	apps, grid, instr, workers, freqs, _ := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, err := buildOptions(*apps, *grid, *instr, *workers, *freqs, "")
	if err != nil {
		return err
	}
	par := *workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	run := func(name, precond string, workers int) (parbenchConfig, string, error) {
		oo := o
		oo.Workers = workers
		oo.Precond = precond
		r, err := exp.NewRunner(oo)
		if err != nil {
			return parbenchConfig{}, "", err
		}
		start := time.Now()
		_, tab, err := r.Figure7()
		if err != nil {
			return parbenchConfig{}, "", err
		}
		wall := time.Since(start)
		st := r.Sys.Ev.Stats()
		c := parbenchConfig{
			Name: name, Precond: precond, Workers: workers, Warm: true,
			WallS: wall.Seconds(), Solves: st.Solves, CGIters: st.SolveIters,
			VCycles: st.VCycles, Degraded: st.DegradedSolves,
			IterHist: st.IterHist.String(),
		}
		return c, tab.String(), nil
	}

	fmt.Printf("parbench: Figure 7 on a %dx%d grid, %d workers (GOMAXPROCS %d)\n",
		o.GridRows, o.GridCols, par, runtime.GOMAXPROCS(0))

	show := func(c parbenchConfig) {
		fmt.Printf("  %-12s %8.2fs  %6d CG iters  %6d V-cycles  iters/solve %s\n",
			c.Name, c.WallS, c.CGIters, c.VCycles, c.IterHist)
	}

	jac, jacTab, err := run("jacobi", "jacobi", 1)
	if err != nil {
		return fmt.Errorf("jacobi run: %w", err)
	}
	show(jac)
	mg, mgTab, err := run("mg", "mg", 1)
	if err != nil {
		return fmt.Errorf("mg run: %w", err)
	}
	show(mg)
	mgPar, mgParTab, err := run("mg-parallel", "mg", par)
	if err != nil {
		return fmt.Errorf("mg parallel run: %w", err)
	}
	show(mgPar)

	rep := parbenchReport{
		Grid:                       o.GridRows,
		Apps:                       o.Apps,
		FreqsGHz:                   o.Freqs,
		Workers:                    par,
		GOMAXPROCS:                 runtime.GOMAXPROCS(0),
		Configs:                    []parbenchConfig{jac, mg, mgPar},
		CGItersJacobi:              jac.CGIters,
		CGItersMG:                  mg.CGIters,
		MGVCycles:                  mg.VCycles,
		SpeedupMG:                  jac.WallS / mg.WallS,
		SpeedupParallel:            mg.WallS / mgPar.WallS,
		TablesMatchJacobi:          mgTab == jacTab,
		TablesByteIdenticalWorkers: mgTab == mgParTab,
	}
	if mg.CGIters > 0 {
		rep.MGIterReduction = float64(jac.CGIters) / float64(mg.CGIters)
	}

	fmt.Printf("  multigrid: %.1fx fewer CG iterations, %.2fx faster serial; parallel %.2fx on top\n",
		rep.MGIterReduction, rep.SpeedupMG, rep.SpeedupParallel)
	if rep.TablesMatchJacobi {
		fmt.Println("  tables match jacobi at print precision")
	} else {
		fmt.Println("  WARNING: MG tables do NOT match the Jacobi tables")
	}
	if rep.TablesByteIdenticalWorkers {
		fmt.Println("  tables byte-identical serial vs parallel")
	} else {
		fmt.Println("  WARNING: parallel tables are NOT byte-identical to serial")
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		if rep.CGItersMG >= rep.CGItersJacobi {
			return fmt.Errorf("check failed: MG used %d CG iterations, not below Jacobi's %d",
				rep.CGItersMG, rep.CGItersJacobi)
		}
		if !rep.TablesMatchJacobi {
			return fmt.Errorf("check failed: MG tables do not match Jacobi tables")
		}
		if !rep.TablesByteIdenticalWorkers {
			return fmt.Errorf("check failed: parallel tables not byte-identical to serial")
		}
	}
	return nil
}
