package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/xylem-sim/xylem/internal/exp"
)

// parbenchReport is the JSON summary written by `xylem parbench`: the
// same Figure 7 sweep timed three ways so the parallel engine and the
// warm-started frequency ladder can each be credited (or blamed)
// separately, plus the byte-identity check the parallel path promises.
type parbenchReport struct {
	Grid       int       `json:"grid"`
	Apps       []string  `json:"apps"`
	FreqsGHz   []float64 `json:"freqs_ghz"`
	Workers    int       `json:"workers"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	SerialColdS   float64 `json:"serial_cold_s"`
	SerialWarmS   float64 `json:"serial_warm_s"`
	ParallelWarmS float64 `json:"parallel_warm_s"`
	// Speedup compares like with like: parallel warm vs serial warm.
	Speedup       float64 `json:"speedup"`
	SpeedupVsCold float64 `json:"speedup_vs_cold"`

	ColdCGIters       int64   `json:"cg_iters_cold"`
	WarmCGIters       int64   `json:"cg_iters_warm"`
	WarmItersSavedPct float64 `json:"warm_iters_saved_pct"`

	TablesByteIdentical bool `json:"tables_byte_identical"`
}

// cmdParbench times the Figure 7 temperature sweep under three engine
// configurations, each on a fresh Runner so no caches carry over:
//
//  1. serial cold:    Workers=1, warm starts off — the seed's behaviour
//  2. serial warm:    Workers=1, warm-started frequency ladder
//  3. parallel warm:  Workers=N, warm-started
//
// It verifies all three render byte-identical tables and writes a JSON
// summary with wall times, speedups, and CG iteration savings.
func cmdParbench(args []string) error {
	fs := flag.NewFlagSet("parbench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_parallel.json", "write the JSON summary to this path")
	apps, grid, instr, workers, freqs := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, err := buildOptions(*apps, *grid, *instr, *workers, *freqs)
	if err != nil {
		return err
	}
	par := *workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	run := func(workers int, noWarm bool) (time.Duration, string, int64, error) {
		oo := o
		oo.Workers = workers
		oo.NoWarmStart = noWarm
		r, err := exp.NewRunner(oo)
		if err != nil {
			return 0, "", 0, err
		}
		start := time.Now()
		_, tab, err := r.Figure7()
		if err != nil {
			return 0, "", 0, err
		}
		return time.Since(start), tab.String(), r.Sys.Ev.Stats().SolveIters, nil
	}

	fmt.Printf("parbench: Figure 7 on a %dx%d grid, %d workers (GOMAXPROCS %d)\n",
		o.GridRows, o.GridCols, par, runtime.GOMAXPROCS(0))

	coldT, coldTab, coldIters, err := run(1, true)
	if err != nil {
		return fmt.Errorf("serial cold run: %w", err)
	}
	fmt.Printf("  serial cold   %8.2fs  %6d CG iterations\n", coldT.Seconds(), coldIters)
	warmT, warmTab, warmIters, err := run(1, false)
	if err != nil {
		return fmt.Errorf("serial warm run: %w", err)
	}
	fmt.Printf("  serial warm   %8.2fs  %6d CG iterations\n", warmT.Seconds(), warmIters)
	parT, parTab, _, err := run(par, false)
	if err != nil {
		return fmt.Errorf("parallel run: %w", err)
	}
	fmt.Printf("  parallel warm %8.2fs\n", parT.Seconds())

	rep := parbenchReport{
		Grid:                o.GridRows,
		Apps:                o.Apps,
		FreqsGHz:            o.Freqs,
		Workers:             par,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		SerialColdS:         coldT.Seconds(),
		SerialWarmS:         warmT.Seconds(),
		ParallelWarmS:       parT.Seconds(),
		Speedup:             warmT.Seconds() / parT.Seconds(),
		SpeedupVsCold:       coldT.Seconds() / parT.Seconds(),
		ColdCGIters:         coldIters,
		WarmCGIters:         warmIters,
		TablesByteIdentical: coldTab == warmTab && warmTab == parTab,
	}
	if coldIters > 0 {
		rep.WarmItersSavedPct = 100 * float64(coldIters-warmIters) / float64(coldIters)
	}

	fmt.Printf("  speedup %.2fx vs serial warm, %.2fx vs serial cold; warm start saved %.1f%% of CG iterations\n",
		rep.Speedup, rep.SpeedupVsCold, rep.WarmItersSavedPct)
	if !rep.TablesByteIdentical {
		fmt.Println("  WARNING: rendered tables are NOT byte-identical across configurations")
	} else {
		fmt.Println("  tables byte-identical across all three configurations")
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
