package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/xylem-sim/xylem/internal/serve"
	"github.com/xylem-sim/xylem/internal/thermal"
)

// serveFlags registers the daemon configuration flags and returns a
// builder that assembles the serve.Config after parsing.
func serveFlags(fs *flag.FlagSet) func() (serve.Config, string, error) {
	addr := fs.String("addr", "127.0.0.1:9378", "HTTP listen address")
	queue := fs.Int("queue", 64, "admission queue capacity (full queue = 429)")
	maxBatch := fs.Int("max-batch", 8, "maximum multi-RHS batch width")
	linger := fs.Duration("linger", 5*time.Millisecond, "maximum batch-formation wait (starvation bound)")
	cacheCap := fs.Int("cache", 8, "artifact cache capacity in stacks (0 = rebuild per request)")
	solvers := fs.Int("solvers", 2, "concurrent batch executors")
	workers := fs.Int("workers", 0, "CG kernel workers per solver (0 = serial)")
	precond := fs.String("precond", "", "CG preconditioner: auto (multigrid), mg, or jacobi")
	cg := fs.String("cg", "", "CG recurrence: auto (classic), classic, or pipelined")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus/JSON metrics on this address (empty = off)")
	return func() (serve.Config, string, error) {
		cfg := serve.DefaultConfig()
		cfg.Addr = *addr
		cfg.QueueCap = *queue
		cfg.MaxBatch = *maxBatch
		cfg.Linger = *linger
		cfg.CacheCap = *cacheCap
		cfg.Solvers = *solvers
		cfg.Workers = *workers
		cfg.RetryAfter = *retryAfter
		pc, ok := thermal.ParsePrecond(*precond)
		if !ok {
			return cfg, "", fmt.Errorf("serve: unknown preconditioner %q", *precond)
		}
		cfg.Precond = pc
		v, ok := thermal.ParseCGVariant(*cg)
		if !ok {
			return cfg, "", fmt.Errorf("serve: unknown CG variant %q", *cg)
		}
		cfg.CG = v
		return cfg, *metricsAddr, nil
	}
}

// cmdServe runs the thermal-solve daemon until SIGINT/SIGTERM, then
// drains gracefully: queued and forming requests are solved and
// answered, late arrivals get 503.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	build := serveFlags(fs)
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, metricsAddr, err := build()
	if err != nil {
		return err
	}
	reg, err := startMetrics(metricsAddr)
	if err != nil {
		return err
	}
	cfg.Obs = reg

	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xylem: serving thermal solves on http://%s/v1/solve (max batch %d, linger %s, cache %d)\n",
		srv.Addr(), cfg.MaxBatch, cfg.Linger, cfg.CacheCap)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "xylem: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "xylem: served %d responses (%d errors, %d overload, %d draining rejections)\n",
		st.Responses, st.Errors, st.RejectedOverload, st.RejectedDraining)
	return nil
}
