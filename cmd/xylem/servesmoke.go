package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"github.com/xylem-sim/xylem/internal/core"
	"github.com/xylem-sim/xylem/internal/obs"
	"github.com/xylem-sim/xylem/internal/serve"
	"github.com/xylem-sim/xylem/internal/stack"
	"github.com/xylem-sim/xylem/internal/workload"
)

// postRaw fires one request and returns the raw response body plus the
// cache/batch headers — the serve-smoke identity checks compare bodies
// byte for byte.
func postRaw(client *http.Client, url string, req *serve.SolveRequest) (body []byte, cache, width string, status int, err error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, "", "", 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, "", "", 0, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	return body, resp.Header.Get("X-Xylem-Cache"), resp.Header.Get("X-Xylem-Batch-Width"), resp.StatusCode, err
}

// cmdServeSmoke is the end-to-end serving check wired into CI: start
// the daemon with a live metrics sink, push mixed traffic through it,
// and assert zero errors, cache reuse, batch formation, agreement with
// the figure pipeline, and the serve metrics on the Prometheus sink.
func cmdServeSmoke(args []string) error {
	fs := flag.NewFlagSet("serve-smoke", flag.ContinueOnError)
	grid := fs.Int("grid", 16, "thermal grid resolution")
	n := fs.Int("n", 24, "mixed requests to fire")
	width := fs.Int("width", 4, "max batch width")
	workers := fs.Int("workers", 0, "CG kernel workers per solver")
	if err := fs.Parse(args); err != nil {
		return err
	}
	schemes := []string{"base", "banke"}
	gen, err := newReqGen(1, *grid, schemes)
	if err != nil {
		return err
	}

	reg := obs.New()
	msrv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		return err
	}
	defer msrv.Close()

	cfg := serve.DefaultConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.QueueCap = 4 * *n
	cfg.MaxBatch = *width
	cfg.Linger = 20 * time.Millisecond
	cfg.Workers = *workers
	cfg.Obs = reg
	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/v1/solve"
	client := &http.Client{Timeout: 10 * time.Minute}
	fmt.Printf("serve-smoke: daemon on %s, metrics on %s (grid %d, batch %d)\n",
		srv.Addr(), msrv.Addr, *grid, *width)

	// Warm every tenant on both paths so the mixed traffic below runs
	// against a hot cache and built bases.
	for j := 0; j < len(schemes); j++ {
		for _, fast := range []bool{false, true} {
			if _, _, _, status, err := postRaw(client, url, gen.request(j, fast)); err != nil || status != http.StatusOK {
				return fmt.Errorf("serve-smoke: warmup req %d (fast=%v): status %d, err %v", j, fast, status, err)
			}
		}
	}

	// Mixed closed-loop traffic: deterministic power maps, deterministic
	// fast-path mix, enough concurrency for batches to form.
	pr := &phaseRunner{gen: gen, client: client, phase: "smoke"}
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < *width; w++ {
		go func() {
			for j := range jobs {
				pr.fire(url, j, gen.mixedFast(j))
			}
			done <- struct{}{}
		}()
	}
	for j := 0; j < *n; j++ {
		jobs <- j
	}
	close(jobs)
	for w := 0; w < *width; w++ {
		<-done
	}
	if len(pr.errs) != 0 || pr.rej != 0 {
		return fmt.Errorf("serve-smoke: %d errors, %d rejections (want 0): first %v", len(pr.errs), pr.rej, pr.errs[0])
	}

	// Byte-identity: the same request answered twice must produce the
	// same bytes (second answer is necessarily a cache hit).
	b1, _, _, _, err := postRaw(client, url, gen.request(3, false))
	if err != nil {
		return err
	}
	b2, cacheState, _, _, err := postRaw(client, url, gen.request(3, false))
	if err != nil {
		return err
	}
	if !bytes.Equal(b1, b2) {
		return fmt.Errorf("serve-smoke: identical requests returned different bodies (%d vs %d bytes)", len(b1), len(b2))
	}
	if cacheState != "hit" {
		return fmt.Errorf("serve-smoke: repeat request not served from cache (X-Xylem-Cache %q)", cacheState)
	}

	// Agreement with the figure pipeline: an app-mode request must match
	// core.System.EvaluateUniform at the same operating point.
	const appName, appFreq, appInstr = "lu-nas", 2.4, 60000
	appReq := &serve.SolveRequest{
		Scheme: "base", Grid: *grid, Mode: serve.ModeApp,
		App: &serve.AppSpec{Name: appName, FreqGHz: appFreq, Instructions: appInstr},
	}
	body, _, _, status, err := postRaw(client, url, appReq)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("serve-smoke: app request: status %d, err %v", status, err)
	}
	var appResp serve.SolveResponse
	if err := json.Unmarshal(body, &appResp); err != nil {
		return err
	}
	ccfg := core.DefaultConfig()
	ccfg.Stack.GridRows, ccfg.Stack.GridCols = *grid, *grid
	sys, err := core.NewSystem(ccfg)
	if err != nil {
		return err
	}
	prof, err := workload.ByName(appName)
	if err != nil {
		return err
	}
	prof.Instructions = appInstr
	ref, err := sys.EvaluateUniform(stack.Base, prof, appFreq)
	if err != nil {
		return err
	}
	if d := math.Abs(appResp.ProcHotC - ref.ProcHotC); d > 1e-9 {
		return fmt.Errorf("serve-smoke: app-mode ProcHotC %.12f vs figure pipeline %.12f (|Δ| %.3g > 1e-9)",
			appResp.ProcHotC, ref.ProcHotC, d)
	}
	if d := math.Abs(appResp.DRAM0HotC - ref.DRAM0HotC); d > 1e-9 {
		return fmt.Errorf("serve-smoke: app-mode DRAM0HotC %.12f vs figure pipeline %.12f (|Δ| %.3g > 1e-9)",
			appResp.DRAM0HotC, ref.DRAM0HotC, d)
	}

	// Serving counters: the cache must have been reused and batches must
	// have formed (width may be 1 under unlucky scheduling; existence is
	// the deterministic assertion).
	st := srv.Stats()
	if st.CacheHits == 0 {
		return fmt.Errorf("serve-smoke: no cache hits across %d requests", st.Requests)
	}
	if st.Batches == 0 {
		return fmt.Errorf("serve-smoke: no batches dispatched")
	}

	// The Prometheus sink must expose the serve metrics.
	resp, err := http.Get("http://" + msrv.Addr + "/metrics")
	if err != nil {
		return err
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		"xylem_serve_requests_total",
		"xylem_serve_queue_depth",
		"xylem_serve_batch_width",
		"xylem_serve_cache_hits_total",
	} {
		if !strings.Contains(string(scrape), want) {
			return fmt.Errorf("serve-smoke: metrics scrape missing %s", want)
		}
	}

	fmt.Printf("serve-smoke: OK — %d requests, %d batches (mean width %.2f), %d cache hits, app-mode matches figure pipeline\n",
		st.Responses, st.Batches, st.MeanBatchWidth, st.CacheHits)
	return nil
}
