package main

import "testing"

// TestPercentileNearestRank pins the nearest-rank definition
// (rank = ceil(p·n), 1-indexed) over known samples, including the
// small-sample p99 case the old rounding got wrong: at n=20, p99 must
// be the maximum (rank ceil(0.99·20) = 20), not the 19th value.
func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		// Reverse order: percentile must sort a copy, not trust input order.
		for i := range out {
			out[i] = float64(n - i)
		}
		return out
	}
	cases := []struct {
		name string
		in   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", seq(1), 0.50, 1},
		{"single p99", seq(1), 0.99, 1},
		{"n4 p50", seq(4), 0.50, 2},
		{"n5 p50", seq(5), 0.50, 3},
		{"n10 p50", seq(10), 0.50, 5},
		{"n10 p90", seq(10), 0.90, 9},
		{"n10 p99", seq(10), 0.99, 10},
		{"n10 p100", seq(10), 1.00, 10},
		{"n20 p99 is max", seq(20), 0.99, 20},
		{"n100 p99", seq(100), 0.99, 99},
		{"n100 p100", seq(100), 1.00, 100},
		{"n100 p0 floor", seq(100), 0, 1},
		{"unsorted", []float64{7, 1, 5, 3}, 0.50, 3},
	}
	for _, tc := range cases {
		if got := percentile(tc.in, tc.p); got != tc.want {
			t.Errorf("%s: percentile(n=%d, p=%g) = %g, want %g",
				tc.name, len(tc.in), tc.p, got, tc.want)
		}
	}
	// The copy contract: the caller's slice must stay untouched.
	in := []float64{3, 1, 2}
	_ = percentile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("percentile mutated its input: %v", in)
	}
}
