package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/xylem-sim/xylem/internal/ckpt"
	"github.com/xylem-sim/xylem/internal/fault"
	"github.com/xylem-sim/xylem/internal/floorplan"
	"github.com/xylem-sim/xylem/internal/obs"
	"github.com/xylem-sim/xylem/internal/serve"
	"github.com/xylem-sim/xylem/internal/stack"
)

// Deterministic-arrival RNG streams (fault.Unit counterfeit-coherence
// streams; StreamBackoff=64 is taken, so start well above).
const (
	streamLoadPower = 128 // per-request block watts
	streamLoadMix   = 129 // fastpath coin in the mixed phase
	streamLoadGaps  = 130 // open-loop exponential inter-arrivals
)

// reqGen deterministically generates solve requests for the load
// harness: request j's tenant, power map and fast-path flag are pure
// functions of (seed, j), so a rerun at the same seed replays the same
// trace — the property the batch-membership determinism test leans on.
type reqGen struct {
	seed    uint64
	grid    int
	schemes []string
	blocks  []string // proc block names, floorplan declaration order
}

func newReqGen(seed uint64, grid int, schemes []string) (*reqGen, error) {
	fp, err := floorplan.BuildProcDie(floorplan.DefaultProcConfig())
	if err != nil {
		return nil, err
	}
	blocks := make([]string, len(fp.Blocks))
	for i, b := range fp.Blocks {
		blocks[i] = b.Name
	}
	return &reqGen{seed: seed, grid: grid, schemes: schemes, blocks: blocks}, nil
}

// request builds request j. Total proc power lands around 35 W spread
// over every floorplan block, plus a lightly powered DRAM die 0 — a
// mid-range operating point for the default stack.
func (g *reqGen) request(j int, fastpath bool) *serve.SolveRequest {
	proc := make(map[string]float64, len(g.blocks))
	scale := 35.0 / float64(len(g.blocks))
	for i := range g.blocks {
		proc[g.blocks[i]] = scale * (0.5 + fault.Unit(g.seed, streamLoadPower, uint64(j), uint64(i)))
	}
	return &serve.SolveRequest{
		Scheme: g.schemes[j%len(g.schemes)],
		Grid:   g.grid,
		Mode:   serve.ModePower,
		Power: &serve.PowerSpec{
			Proc: proc,
			DRAM: []serve.DRAMDiePower{{
				BackgroundW: 0.6,
				BankW:       [][]float64{{0.15, 0.15}, {0.1, 0.1}},
			}},
		},
		FastPath: fastpath,
	}
}

// mixedFast is the open-loop phase's deterministic fast-path coin.
func (g *reqGen) mixedFast(j int) bool {
	return fault.Unit(g.seed, streamLoadMix, uint64(j), 0) < 0.5
}

// postSolve fires one request and returns its latency. Non-2xx statuses
// come back as errors carrying the wire kind.
func postSolve(client *http.Client, url string, req *serve.SolveRequest) (latencyMs float64, status int, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	lat := float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return lat, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb serve.ErrorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
			return lat, resp.StatusCode, fmt.Errorf("http %d: %s", resp.StatusCode, eb.Error)
		}
		return lat, resp.StatusCode, fmt.Errorf("http %d", resp.StatusCode)
	}
	return lat, resp.StatusCode, nil
}

// loadPhase is one measured traffic pattern in the report.
type loadPhase struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Conc     int     `json:"conc"`
	MaxBatch int     `json:"max_batch"`
	LingerMs float64 `json:"linger_ms"`
	FastPath bool    `json:"fastpath,omitempty"`
	RateRPS  float64 `json:"rate_rps,omitempty"`

	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	WallS         float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Errors        int     `json:"errors"`
	Rejected429   int     `json:"rejected_429"`

	Server serve.Stats `json:"server"`
}

// loadbenchReport is BENCH_serve.json: the serving latency distribution
// under each traffic pattern, and the headline batching + cache wins.
type loadbenchReport struct {
	Grid       int      `json:"grid"`
	Schemes    []string `json:"schemes"`
	Seed       uint64   `json:"seed"`
	Workers    int      `json:"workers"`
	Solvers    int      `json:"solvers"`
	GOMAXPROCS int      `json:"gomaxprocs"`

	Phases []loadPhase `json:"phases"`

	// Headline p50s: cold-solo is the no-cache no-batch denominator
	// (every request rebuilds stack, hierarchy, scratch); the warm
	// numbers reuse cached artifacts at increasing batch widths.
	ColdSoloP50Ms   float64 `json:"cold_solo_p50_ms"`
	WarmSoloP50Ms   float64 `json:"warm_solo_p50_ms"`
	WarmBatchP50Ms  float64 `json:"warm_batch_p50_ms"`
	WarmGreensP50Ms float64 `json:"warm_greens_p50_ms"`

	BatchSpeedup  float64 `json:"batch_speedup"`
	GreensSpeedup float64 `json:"greens_speedup"`

	// Pass is the acceptance gate: a warm phase at batch width >= 4
	// (batched CG or cached-basis fast path, whichever the hardware
	// favours) with p50 at or under half the cold solo p50, and zero
	// non-429 errors anywhere.
	Pass bool `json:"pass"`
}

// percentile returns the p-th (0..1) percentile by the standard
// nearest-rank definition, rank = ceil(p·n), on a sorted copy. The
// previous int(p·(n-1)+0.5) rounding was neither nearest-rank nor
// linear interpolation and biased small-sample p99 low (at n=20 it
// reported the 19th value as p99 instead of the max).
func percentile(ms []float64, p float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func meanOf(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range ms {
		t += v
	}
	return t / float64(len(ms))
}

// phaseRunner drives one serve.Server instance through one traffic
// pattern and collects its latencies.
type phaseRunner struct {
	gen    *reqGen
	client *http.Client

	mu    sync.Mutex
	lats  []float64
	errs  []error
	rej   int
	recs  []string // optional per-request CSV records
	phase string
}

func (pr *phaseRunner) fire(url string, j int, fastpath bool) {
	lat, status, err := postSolve(pr.client, url, pr.gen.request(j, fastpath))
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if status == http.StatusTooManyRequests {
		pr.rej++
		return
	}
	if err != nil {
		pr.errs = append(pr.errs, fmt.Errorf("req %d: %w", j, err))
		return
	}
	pr.lats = append(pr.lats, lat)
	pr.recs = append(pr.recs, fmt.Sprintf("%s,%d,%.3f", pr.phase, j, lat))
}

// runClosed runs n requests through conc closed-loop clients.
func (pr *phaseRunner) runClosed(url string, n, conc int, fastpath bool) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				pr.fire(url, j, fastpath)
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
}

// runOpen fires n requests open-loop at rate RPS with deterministic
// exponential inter-arrival gaps, mixing fast-path and CG requests.
func (pr *phaseRunner) runOpen(url string, n int, rate float64) {
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		u := fault.Unit(pr.gen.seed, streamLoadGaps, uint64(j), 0)
		gap := -math.Log(1-u) / rate
		time.Sleep(time.Duration(gap * float64(time.Second)))
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			pr.fire(url, j, pr.gen.mixedFast(j))
		}(j)
	}
	wg.Wait()
}

// benchPhase spins up a fresh daemon with the given knobs, optionally
// warms its cache (one untimed request per scheme, fast-path included
// when the timed run uses it, so basis builds land in warmup), runs the
// traffic, drains, and reports.
func benchPhase(gen *reqGen, name string, cfg serve.Config, n, conc int, fastpath, warm bool, openRate float64, csv *[]string) (loadPhase, error) {
	ph := loadPhase{
		Name:     name,
		Requests: n,
		Conc:     conc,
		MaxBatch: cfg.MaxBatch,
		LingerMs: float64(cfg.Linger) / float64(time.Millisecond),
		FastPath: fastpath,
		RateRPS:  openRate,
	}
	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		return ph, err
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/v1/solve"

	pr := &phaseRunner{gen: gen, client: &http.Client{Timeout: 10 * time.Minute}, phase: name}
	if warm {
		for j := 0; j < len(gen.schemes); j++ {
			if _, _, err := postSolve(pr.client, url, gen.request(j, false)); err != nil {
				return ph, fmt.Errorf("%s: warmup req %d: %w", name, j, err)
			}
			if fastpath || openRate > 0 {
				if _, _, err := postSolve(pr.client, url, gen.request(j, true)); err != nil {
					return ph, fmt.Errorf("%s: warmup fastpath req %d: %w", name, j, err)
				}
			}
		}
	}

	t0 := time.Now()
	if openRate > 0 {
		pr.runOpen(url, n, openRate)
	} else {
		pr.runClosed(url, n, conc, fastpath)
	}
	ph.WallS = time.Since(t0).Seconds()

	for _, err := range pr.errs {
		fmt.Fprintf(os.Stderr, "loadbench: %s: %v\n", name, err)
	}
	ph.P50Ms = percentile(pr.lats, 0.50)
	ph.P90Ms = percentile(pr.lats, 0.90)
	ph.P99Ms = percentile(pr.lats, 0.99)
	ph.MeanMs = meanOf(pr.lats)
	if ph.WallS > 0 {
		ph.ThroughputRPS = float64(len(pr.lats)) / ph.WallS
	}
	ph.Errors = len(pr.errs)
	ph.Rejected429 = pr.rej
	if csv != nil {
		*csv = append(*csv, pr.recs...)
	}
	ph.Server = srv.Stats()
	return ph, nil
}

// cmdLoadbench is the serving gate: a closed- and open-loop load
// generator with deterministic seeded arrivals and mixed tenants,
// reporting p50/p99 latency and throughput versus batch width and cache
// state, written atomically to BENCH_serve.json.
func cmdLoadbench(args []string) error {
	fs := flag.NewFlagSet("loadbench", flag.ContinueOnError)
	grid := fs.Int("grid", 24, "thermal grid resolution")
	schemesCSV := fs.String("schemes", "base,banke", "comma-separated tenant schemes")
	n := fs.Int("n", 24, "requests per closed-loop phase")
	width := fs.Int("width", 8, "max batch width for the batched phases")
	linger := fs.Duration("linger", 5*time.Millisecond, "batch-formation linger")
	workers := fs.Int("workers", 0, "CG kernel workers per solver (0 = serial)")
	solvers := fs.Int("solvers", 2, "concurrent batch executors")
	seed := fs.Uint64("seed", 1, "arrival/power trace seed")
	rate := fs.Float64("rate", 25, "open-loop arrival rate, requests/s")
	out := fs.String("out", "BENCH_serve.json", "report path (atomic write)")
	csvOut := fs.String("csv", "", "optional per-request latency CSV (phase,seq,ms)")
	check := fs.Bool("check", false, "exit non-zero unless the batching+cache gate passes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	schemes := strings.Split(*schemesCSV, ",")
	for _, s := range schemes {
		if _, ok := stack.ParseScheme(s); !ok {
			return fmt.Errorf("loadbench: unknown scheme %q", s)
		}
	}
	gen, err := newReqGen(*seed, *grid, schemes)
	if err != nil {
		return err
	}

	base := serve.DefaultConfig()
	base.Addr = "127.0.0.1:0"
	base.QueueCap = 4 * *n
	base.Workers = *workers
	base.Solvers = *solvers
	base.Obs = obs.New()

	rep := loadbenchReport{
		Grid: *grid, Schemes: schemes, Seed: *seed,
		Workers: *workers, Solvers: *solvers, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var csv []string
	csvp := (*[]string)(nil)
	if *csvOut != "" {
		csvp = &csv
	}

	run := func(name string, mutate func(*serve.Config), n, conc int, fastpath, warm bool, openRate float64) (loadPhase, error) {
		cfg := base
		cfg.Obs = obs.New()
		mutate(&cfg)
		fmt.Fprintf(os.Stderr, "loadbench: phase %s (%d reqs, conc %d, batch %d)...\n", name, n, conc, cfg.MaxBatch)
		ph, err := benchPhase(gen, name, cfg, n, conc, fastpath, warm, openRate, csvp)
		if err != nil {
			return ph, err
		}
		rep.Phases = append(rep.Phases, ph)
		fmt.Fprintf(os.Stderr, "loadbench: phase %s: p50 %.1f ms  p99 %.1f ms  %.1f req/s  (%d errors, %d rejected)\n",
			name, ph.P50Ms, ph.P99Ms, ph.ThroughputRPS, ph.Errors, ph.Rejected429)
		return ph, nil
	}

	// Phase 1: cold solo — cache off, batch off. Every request pays the
	// full stack + hierarchy build: the denominator.
	cold, err := run("cold-solo", func(c *serve.Config) { c.CacheCap = 0; c.MaxBatch = 1 }, *n, 1, false, false, 0)
	if err != nil {
		return err
	}
	// Phase 2: warm solo — cache on, still no batching. Isolates the
	// artifact-cache win.
	warmSolo, err := run("warm-solo", func(c *serve.Config) { c.MaxBatch = 1 }, *n, 1, false, true, 0)
	if err != nil {
		return err
	}
	// Phase 3: warm batched — concurrency equals width so full batches
	// form (idle bypass off: this phase isolates the batching config,
	// so every dispatch should wait for width or linger).
	warmBatch, err := run("warm-batch", func(c *serve.Config) {
		c.MaxBatch = *width
		c.Linger = *linger
		c.IdleBypass = false
	}, *n, *width, false, true, 0)
	if err != nil {
		return err
	}
	// Phase 4: warm Green's — the O(blocks) GEMV fast path (basis built
	// during warmup), same width-8 batching config. Solo closed-loop
	// clients, like the cold phase, so the comparison is per-request
	// latency, not CPU timesharing between concurrent clients.
	warmGreens, err := run("warm-greens", func(c *serve.Config) { c.MaxBatch = *width; c.Linger = *linger }, *n, 1, true, true, 0)
	if err != nil {
		return err
	}
	// Phase 5: open-loop mixed tenants and paths at the target rate —
	// the p99-under-load number.
	if _, err := run("open-mixed", func(c *serve.Config) { c.MaxBatch = *width; c.Linger = *linger }, 2**n, 0, false, true, *rate); err != nil {
		return err
	}

	rep.ColdSoloP50Ms = cold.P50Ms
	rep.WarmSoloP50Ms = warmSolo.P50Ms
	rep.WarmBatchP50Ms = warmBatch.P50Ms
	rep.WarmGreensP50Ms = warmGreens.P50Ms
	if warmBatch.P50Ms > 0 {
		rep.BatchSpeedup = cold.P50Ms / warmBatch.P50Ms
	}
	if warmGreens.P50Ms > 0 {
		rep.GreensSpeedup = cold.P50Ms / warmGreens.P50Ms
	}
	errTotal := 0
	for _, ph := range rep.Phases {
		errTotal += ph.Errors
	}
	// The gate: some warm configuration at batch width >= 4 must serve a
	// request in at most half the cold solo path's p50. On multi-core
	// boxes the batched CG phase can clear it; on small boxes the
	// cached-basis fast path is the one that does (a CG batch of width k
	// costs k serial solves of wall on one core, so batching there buys
	// throughput under overhead, not latency).
	warmBest := warmBatch.P50Ms
	if warmGreens.P50Ms > 0 && warmGreens.P50Ms < warmBest {
		warmBest = warmGreens.P50Ms
	}
	rep.Pass = *width >= 4 && errTotal == 0 && warmBest <= 0.5*cold.P50Ms

	if err := ckpt.WriteFileAtomic(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&rep)
	}); err != nil {
		return err
	}
	if *csvOut != "" {
		if err := ckpt.WriteFileAtomic(*csvOut, func(w io.Writer) error {
			if _, err := fmt.Fprintln(w, "phase,seq,ms"); err != nil {
				return err
			}
			for _, rec := range csv {
				if _, err := fmt.Fprintln(w, rec); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	fmt.Printf("loadbench: cold-solo p50 %.1f ms -> warm-batch p50 %.1f ms (%.1fx), warm-greens p50 %.1f ms (%.1fx); report %s\n",
		rep.ColdSoloP50Ms, rep.WarmBatchP50Ms, rep.BatchSpeedup, rep.WarmGreensP50Ms, rep.GreensSpeedup, *out)
	if *check && !rep.Pass {
		return fmt.Errorf("loadbench: gate failed: best warm p50 %.1f ms vs cold-solo p50 %.1f ms (need <= 0.5x), %d errors",
			warmBest, rep.ColdSoloP50Ms, errTotal)
	}
	return nil
}
