package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/xylem-sim/xylem/internal/config"
	"github.com/xylem-sim/xylem/internal/dtm"
	"github.com/xylem-sim/xylem/internal/fleet"
)

// fleetFlags registers the fleet replay flags on fs and returns a
// closure that builds the Config after parsing.
func fleetFlags(fs *flag.FlagSet) func() (fleet.Config, error) {
	def := fleet.DefaultConfig()
	stacks := fs.Int("stacks", def.Stacks, "modeled stacks in the fleet")
	events := fs.Int("events", def.Events, "total control events to replay")
	shape := fs.String("shape", def.Shape.String(), "traffic shape: diurnal, bursty, flash, failover, or mixed")
	seed := fs.Uint64("seed", def.Seed, "replay seed (traces, faults, app churn)")
	period := fs.Float64("period", def.PeriodMs, "control period on the virtual clock (ms)")
	phases := fs.Int("phases", def.Phases, "phase cohorts (stacks in a cohort fall due together)")
	policy := fs.String("policy", "guarded", "sensor policy: guarded or naive")
	guard := fs.Float64("guard", def.GuardC, "guard band in °C")
	apps := fs.String("apps", strings.Join(def.Apps, ","), "comma-separated application pool")
	instr := fs.Int("instr", def.Instructions, "per-thread instruction budget")
	grid := fs.Int("grid", def.Grid, "thermal grid resolution (NxN)")
	schemeName := fs.String("scheme", "base", "scheme: base|bank|banke|isoCount|prior")
	batch := fs.Int("batch", def.BatchWidth, "multi-RHS thermal batch width")
	workers := fs.Int("workers", 0, "solver workers and batch-group dispatch width (0 = 1)")
	slo := fs.Float64("slo", def.SLOMs, "served-latency objective (ms)")
	dropout := fs.Float64("dropout", def.Fault.SensorDropoutRate, "per-read sensor dropout rate")
	solverFault := fs.Float64("solverfault", def.Fault.SolverDivergeRate, "per-solve injected solver fault rate")
	checkpoint := fs.String("checkpoint", "", "persist crash-safe replay snapshots in this directory")
	resume := fs.Bool("resume", false, "resume the replay from the -checkpoint directory")
	ckptEvery := fs.Int("ckpt-every", def.CkptEveryRounds, "rounds between checkpoint snapshots")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus/JSON metrics on this address (empty = off)")
	return func() (fleet.Config, error) {
		cfg := def
		cfg.Stacks, cfg.Events, cfg.Seed = *stacks, *events, *seed
		cfg.PeriodMs, cfg.Phases = *period, *phases
		cfg.GuardC, cfg.Instructions, cfg.Grid = *guard, *instr, *grid
		cfg.BatchWidth, cfg.Workers, cfg.SLOMs = *batch, *workers, *slo
		cfg.Checkpoint, cfg.Resume, cfg.CkptEveryRounds = *checkpoint, *resume, *ckptEvery
		cfg.Fault.SensorDropoutRate = *dropout
		cfg.Fault.SolverDivergeRate = *solverFault
		cfg.Fault.SolverBudgetRate = *solverFault
		var err error
		if cfg.Shape, err = fleet.ParseShape(*shape); err != nil {
			return cfg, err
		}
		switch *policy {
		case "guarded":
			cfg.Policy = dtm.GuardedPolicy
		case "naive":
			cfg.Policy = dtm.NaivePolicy
		default:
			return cfg, fmt.Errorf("fleet: unknown policy %q (guarded, naive)", *policy)
		}
		if cfg.Scheme, err = config.BuildScheme(*schemeName); err != nil {
			return cfg, err
		}
		if *apps != "" {
			cfg.Apps = strings.Split(*apps, ",")
		}
		if *resume && *checkpoint == "" {
			return cfg, fmt.Errorf("fleet: -resume requires -checkpoint DIR")
		}
		if cfg.Obs, err = startMetrics(*metricsAddr); err != nil {
			return cfg, err
		}
		return cfg, nil
	}
}

func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	build := fleetFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := build()
	if err != nil {
		return err
	}
	e, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	rep, err := e.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// cmdFleetSmoke is the end-to-end determinism gate: replay a small
// fleet uninterrupted, then replay the same fleet with checkpoints and
// a crash injected at the second snapshot, resume it at a different
// worker/batch setting, and require the two final reports to be
// byte-identical.
func cmdFleetSmoke(args []string) error {
	fs := flag.NewFlagSet("fleet-smoke", flag.ContinueOnError)
	stacks := fs.Int("stacks", 16, "modeled stacks")
	events := fs.Int("events", 64, "control events to replay")
	seed := fs.Uint64("seed", 7, "replay seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fleet.DefaultConfig()
	cfg.Grid = 8
	cfg.Stacks, cfg.Events, cfg.Seed = *stacks, *events, *seed
	cfg.Apps = []string{"fft"}
	cfg.Instructions = 4000
	cfg.BatchWidth = 4
	cfg.Fault.SensorDropoutRate = 0.05
	cfg.Fault.SolverDivergeRate = 0.05

	run := func(c fleet.Config) (string, error) {
		e, err := fleet.New(c)
		if err != nil {
			return "", err
		}
		return e.Run(context.Background())
	}

	want, err := run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("uninterrupted replay:\n%s", want)

	dir, err := os.MkdirTemp("", "xylem-fleet-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	killed := cfg
	killed.Checkpoint = dir
	killed.CkptEveryRounds = 1
	killed.KillAfterSaves = 2
	if _, err := run(killed); !errors.Is(err, fleet.ErrKilled) {
		return fmt.Errorf("fleet-smoke: crash hook returned %v, want ErrKilled", err)
	}
	fmt.Println("killed at second snapshot; resuming with workers=4 batch=8")

	resumed := killed
	resumed.KillAfterSaves = 0
	resumed.Resume = true
	resumed.Workers = 4
	resumed.BatchWidth = 8
	got, err := run(resumed)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("fleet-smoke: resumed report diverged\n--- uninterrupted\n%s--- resumed\n%s", want, got)
	}
	fmt.Println("fleet-smoke ok: resumed report is byte-identical")
	return nil
}
