// Command xylem drives the Xylem reproduction: it evaluates the thermal
// and performance behaviour of a 3D processor-memory stack under the
// paper's TTSV/µbump schemes and regenerates the evaluation figures.
//
// Usage:
//
//	xylem temps   [-apps a,b,c] [-freqs 2.4,3.5] [-grid 32] [-instr N]
//	xylem boost   [-apps a,b,c] [-grid 32] [-instr N]
//	xylem figure  -id 7|8|9|10|11|12|13|14|15|16|17|18|19|area [...]
//	xylem all     [...]            regenerate every figure (slow)
//	xylem schemes                  print Table 2 (scheme inventory)
//	xylem floorplan                dump the processor & DRAM floorplans
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/xylem-sim/xylem/internal/ckpt"
	"github.com/xylem-sim/xylem/internal/config"
	"github.com/xylem-sim/xylem/internal/core"
	"github.com/xylem-sim/xylem/internal/exp"
	"github.com/xylem-sim/xylem/internal/floorplan"
	"github.com/xylem-sim/xylem/internal/geom"
	"github.com/xylem-sim/xylem/internal/render"
	"github.com/xylem-sim/xylem/internal/stack"
	"github.com/xylem-sim/xylem/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "temps":
		err = cmdFigure("7", args)
	case "boost":
		err = cmdBoost(args)
	case "figure":
		err = cmdFigureFlag(args)
	case "all":
		err = cmdAll(args)
	case "schemes":
		err = cmdSchemes()
	case "floorplan":
		err = cmdFloorplan()
	case "heatmap":
		err = cmdHeatmap(args)
	case "trace":
		err = cmdTrace(args)
	case "faults":
		err = cmdFaults(args)
	case "parbench":
		err = cmdParbench(args)
	case "obs-smoke":
		err = cmdObsSmoke(args)
	case "resume":
		err = cmdResume(args)
	case "resume-smoke":
		err = cmdResumeSmoke(args)
	case "serve":
		err = cmdServe(args)
	case "loadbench":
		err = cmdLoadbench(args)
	case "serve-smoke":
		err = cmdServeSmoke(args)
	case "fleet":
		err = cmdFleet(args)
	case "fleet-smoke":
		err = cmdFleetSmoke(args)
	default:
		usage()
		os.Exit(2)
	}
	stopProfiles()
	stopMetrics()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xylem:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xylem <temps|boost|figure|all|schemes|floorplan> [flags]
  temps      processor-temperature sweep (Figure 7)
  boost      iso-temperature frequency boost (Figures 9-12)
  figure     one figure: -id 7..19 or area
  all        every figure and table
  schemes    Table 2 scheme inventory
  floorplan  dump die floorplans
  heatmap    render the processor-die temperature field
  trace      record a synthetic workload trace to a portable file
  faults     sensor/power fault-injection sweep of the guarded DTM
  parbench   time the Figure 7 sweep serial vs parallel vs warm-started
  obs-smoke  run a figure with and without metrics; assert identical tables
  resume     continue an interrupted sweep from its -checkpoint directory
  resume-smoke  kill a sweep at a checkpoint, resume it, assert identical tables
  serve      run the batching thermal-solve daemon (HTTP/JSON on -addr)
  loadbench  closed/open-loop load generator against the daemon; writes BENCH_serve.json
  serve-smoke  end-to-end daemon check: mixed traffic, cache/batch/metrics asserts
  fleet      deterministic fleet-scale trace replay over modeled stacks
  fleet-smoke  kill a checkpointed fleet replay, resume it, assert byte-identical reports

Experiment commands accept -metrics-addr HOST:PORT to serve live
Prometheus/JSON metrics and a trace dump while they run; 'xylem trace
-obs HOST:PORT' fetches the trace ring from such a process.

Sweep commands accept -checkpoint DIR to persist crash-safe progress
snapshots, -resume to continue from them, and -retries/-quarantine to
retry failing points down a degradation ladder. -fastpath on|oracle
serves steady-state thermal queries from a precomputed Green's-function
basis (oracle runs both paths and fails on disagreement).`)
}

// cliOpts holds the shared experiment flags registered by optFlags.
type cliOpts struct {
	apps, freqs, precond, cg    *string
	fastpath                    *string
	grid, instr, workers, batch *int
	cpuprofile, memprofile      *string
	metricsAddr                 *string
	checkpoint                  *string
	resume                      *bool
	ckptEvery                   *int
	retries                     *int
	quarantine                  *bool
	retrySeed                   *uint64
}

// optFlags registers the shared experiment flags on a FlagSet.
func optFlags(fs *flag.FlagSet) *cliOpts {
	return &cliOpts{
		apps:        fs.String("apps", "", "comma-separated application subset (default: all 17)"),
		grid:        fs.Int("grid", 32, "thermal grid resolution (NxN)"),
		instr:       fs.Int("instr", 0, "per-thread instruction budget (0 = profile default)"),
		workers:     fs.Int("workers", 0, "concurrent experiment points (0 = all CPUs, 1 = serial)"),
		batch:       fs.Int("batch", 0, "multi-RHS thermal batch width (0 or 1 = per-point solves)"),
		freqs:       fs.String("freqs", "2.4,2.8,3.2,3.5", "frequencies for temperature sweeps (GHz)"),
		precond:     fs.String("precond", "", "CG preconditioner: auto (multigrid), mg, or jacobi"),
		cg:          fs.String("cg", "", "CG recurrence: auto (classic), classic, or pipelined (single fused reduction per iteration)"),
		fastpath:    fs.String("fastpath", "", "Green's-function reduced-order serving: off, on, or oracle"),
		cpuprofile:  fs.String("cpuprofile", "", "write a CPU profile to this path"),
		memprofile:  fs.String("memprofile", "", "write a heap profile to this path at exit"),
		metricsAddr: fs.String("metrics-addr", "", "serve Prometheus/JSON metrics and a trace dump on this address (empty = off)"),
		checkpoint:  fs.String("checkpoint", "", "persist crash-safe sweep progress in this directory (empty = off)"),
		resume:      fs.Bool("resume", false, "resume the sweep from the -checkpoint directory"),
		ckptEvery:   fs.Int("ckpt-every", 0, "ladder rungs between checkpoint snapshots (0 = every rung)"),
		retries:     fs.Int("retries", 0, "retry failed sweep points down a degradation ladder this many times (0 = off)"),
		quarantine:  fs.Bool("quarantine", false, "skip points that exhaust their retries instead of failing the sweep"),
		retrySeed:   fs.Uint64("retry-seed", 1, "seed for the deterministic retry-backoff jitter"),
	}
}

// options builds exp.Options from the parsed flags (and starts any
// requested profiling — call after fs.Parse).
func (c *cliOpts) options() (exp.Options, error) {
	if err := startProfiles(*c.cpuprofile, *c.memprofile); err != nil {
		return exp.Options{}, err
	}
	o := exp.DefaultOptions()
	reg, err := startMetrics(*c.metricsAddr)
	if err != nil {
		return exp.Options{}, err
	}
	o.Obs = reg
	if *c.apps != "" {
		o.Apps = strings.Split(*c.apps, ",")
	}
	o.GridRows, o.GridCols = *c.grid, *c.grid
	o.Instructions = *c.instr
	o.Workers = *c.workers
	o.BatchWidth = *c.batch
	o.Precond = *c.precond
	o.CG = *c.cg
	o.FastPath = *c.fastpath
	if *c.freqs != "" {
		o.Freqs = nil
		for _, s := range strings.Split(*c.freqs, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return exp.Options{}, fmt.Errorf("bad frequency %q", s)
			}
			o.Freqs = append(o.Freqs, f)
		}
	}
	if *c.resume && *c.checkpoint == "" {
		return exp.Options{}, fmt.Errorf("-resume requires -checkpoint DIR")
	}
	if *c.checkpoint != "" {
		o.Checkpoint = &exp.CkptConfig{Dir: *c.checkpoint, Every: *c.ckptEvery, Resume: *c.resume}
	}
	if *c.retries > 0 || *c.quarantine {
		o.Supervise = &exp.SuperviseConfig{Retries: *c.retries, Seed: *c.retrySeed, Quarantine: *c.quarantine}
	}
	return o, nil
}

// newRunner parses the shared flags and builds a Runner. label names the
// figure the command drives, recorded in the checkpoint manifest so
// `xylem resume` can rerun it.
func newRunner(fs *flag.FlagSet, args []string, label string) (*exp.Runner, error) {
	c := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o, err := c.options()
	if err != nil {
		return nil, err
	}
	if o.Checkpoint != nil {
		o.Checkpoint.Label = label
	}
	return exp.NewRunner(o)
}

func cmdBoost(args []string) error {
	fs := flag.NewFlagSet("boost", flag.ContinueOnError)
	r, err := newRunner(fs, args, "boost")
	if err != nil {
		return err
	}
	rows, err := r.BoostSweep()
	if err != nil {
		return err
	}
	for _, t := range []exp.Table{r.Figure9(rows), r.Figure10(rows), r.Figure11(rows), r.Figure12(rows)} {
		t.Fprint(os.Stdout)
		fmt.Println()
	}
	return nil
}

func cmdFigureFlag(args []string) error {
	fs := flag.NewFlagSet("figure", flag.ContinueOnError)
	id := fs.String("id", "", "figure id: 7..19, area, refresh, d2d, profile, workloads, or org")
	csvPath := fs.String("csv", "", "also write the table as CSV to this path")
	c := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("figure: -id required")
	}
	o, err := c.options()
	if err != nil {
		return err
	}
	if o.Checkpoint != nil {
		o.Checkpoint.Label = *id
	}
	r, err := exp.NewRunner(o)
	if err != nil {
		return err
	}
	csvOut = *csvPath
	defer func() { csvOut = "" }()
	return runFigure(r, *id)
}

// csvOut, when set, makes runFigure's print helper also write the table
// as CSV.
var csvOut string

// tableOut is where runFigureTable renders tables; obs-smoke redirects
// it to capture the exact bytes a user would see on stdout.
var tableOut io.Writer = os.Stdout

func cmdFigure(id string, args []string) error {
	fs := flag.NewFlagSet("temps", flag.ContinueOnError)
	r, err := newRunner(fs, args, id)
	if err != nil {
		return err
	}
	return runFigure(r, id)
}

// runFigure renders one figure and then reports the solver work it cost
// (solves, CG iterations, multigrid V-cycles, iteration histogram) as a
// delta against the evaluator's counters at entry — per-figure numbers
// even when one Runner regenerates several figures.
func runFigure(r *exp.Runner, id string) error {
	prev := r.Sys.Ev.Stats()
	if err := runFigureTable(r, id); err != nil {
		return err
	}
	d := r.Sys.Ev.Stats().Sub(prev)
	if d.Solves > 0 {
		fmt.Printf("solver work: %d solves, %d CG iters, %d V-cycles, %d degraded; iters/solve %s\n",
			d.Solves, d.SolveIters, d.VCycles, d.DegradedSolves, d.IterHist)
	}
	if d.ResidualReplacements > 0 || d.DriftCorrections > 0 {
		fmt.Printf("pipelined CG drift control: %d residual replacements, %d drift corrections\n",
			d.ResidualReplacements, d.DriftCorrections)
	}
	if d.BatchedSolves > 0 {
		fmt.Printf("batched solves: %d calls over %d columns, %d deflated early; occupancy %s\n",
			d.BatchedSolves, d.BatchedColumns, d.DeflatedColumns, d.BatchOcc)
	}
	if d.GreensHits > 0 || d.GreensMisses > 0 || d.BasisBuilds > 0 {
		fmt.Printf("greens fast path: %d hits, %d CG fallbacks, %d basis builds\n",
			d.GreensHits, d.GreensMisses, d.BasisBuilds)
	}
	if quar := r.Quarantined(); len(quar) > 0 {
		fmt.Printf("quarantined %d point(s) — their table cells are gaps:\n", len(quar))
		for _, q := range quar {
			fmt.Printf("  %s\n", q.Error())
		}
	}
	return nil
}

func runFigureTable(r *exp.Runner, id string) error {
	print := func(t exp.Table, err error) error {
		if err != nil {
			return err
		}
		t.Fprint(tableOut)
		if csvOut != "" {
			if err := ckpt.WriteFileAtomic(csvOut, t.CSV); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", csvOut)
		}
		return nil
	}
	switch id {
	case "7":
		_, t, err := r.Figure7()
		return print(t, err)
	case "8":
		_, t, err := r.Figure8()
		return print(t, err)
	case "9", "10", "11", "12":
		rows, err := r.BoostSweep()
		if err != nil {
			return err
		}
		switch id {
		case "9":
			return print(r.Figure9(rows), nil)
		case "10":
			return print(r.Figure10(rows), nil)
		case "11":
			return print(r.Figure11(rows), nil)
		default:
			return print(r.Figure12(rows), nil)
		}
	case "13":
		_, t, err := r.Figure13()
		return print(t, err)
	case "14":
		_, t, err := r.Figure14()
		return print(t, err)
	case "15":
		_, t, err := r.Figure15()
		return print(t, err)
	case "16":
		_, t, err := r.Figure16()
		return print(t, err)
	case "17":
		_, t, err := r.Figure17()
		return print(t, err)
	case "18":
		_, t, err := r.Figure18()
		return print(t, err)
	case "19":
		_, t, err := r.Figure19()
		return print(t, err)
	case "area":
		_, t, err := r.TableArea()
		return print(t, err)
	case "refresh":
		_, t, err := r.RefreshStudy()
		return print(t, err)
	case "d2d":
		_, t, err := r.D2DSensitivity()
		return print(t, err)
	case "workloads":
		_, t, err := r.TableWorkloads()
		return print(t, err)
	case "org":
		_, t, err := r.OrgCompare()
		return print(t, err)
	case "profile":
		_, t, err := r.StackProfile(stack.Base)
		if err != nil {
			return err
		}
		t.Fprint(tableOut)
		fmt.Fprintln(tableOut)
		_, t2, err := r.StackProfile(stack.BankE)
		return print(t2, err)
	default:
		return fmt.Errorf("unknown figure %q", id)
	}
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	r, err := newRunner(fs, args, "all")
	if err != nil {
		return err
	}
	return cmdAllFigures(r)
}

// cmdAllFigures regenerates every figure on one Runner; `xylem resume`
// reuses it when the interrupted run was `xylem all`.
func cmdAllFigures(r *exp.Runner) error {
	ids := []string{"area", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19"}
	for _, id := range ids {
		if err := runFigure(r, id); err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		fmt.Println()
	}
	return nil
}

func cmdHeatmap(args []string) error {
	fs := flag.NewFlagSet("heatmap", flag.ContinueOnError)
	app := fs.String("app", "lu-nas", "application to run")
	schemeName := fs.String("scheme", "banke", "scheme: base|bank|banke|isoCount|prior")
	freq := fs.Float64("freq", 2.4, "core frequency (GHz)")
	grid := fs.Int("grid", 32, "thermal grid resolution (NxN)")
	instr := fs.Int("instr", 150000, "per-thread instruction budget")
	ppmPath := fs.String("ppm", "", "also write a PPM image to this path")
	cfgPath := fs.String("config", "", "JSON stack configuration file (see internal/config)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := config.BuildScheme(*schemeName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if *cfgPath != "" {
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			return err
		}
	}
	cfg.Stack.GridRows, cfg.Stack.GridCols = *grid, *grid
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	p, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	if *instr > 0 {
		p.Instructions = *instr
	}
	o, err := sys.EvaluateUniform(kind, p, *freq)
	if err != nil {
		return err
	}
	st := sys.Stack(kind)
	fmt.Printf("%s on %s at %.1f GHz: proc hotspot %.1f °C, bottom DRAM %.1f °C\n\n",
		*app, kind, *freq, o.ProcHotC, o.DRAM0HotC)

	fmt.Println("processor die (active layer):")
	if err := render.ASCII(os.Stdout, st.Model.Grid, o.Temps[st.ProcMetalLayer], math.NaN(), math.NaN()); err != nil {
		return err
	}
	fmt.Println("\nstack profile:")
	names := make([]string, len(st.Model.Layers))
	for i, l := range st.Model.Layers {
		names[i] = l.Name
	}
	if err := render.LayerSummary(os.Stdout, names, o.Temps); err != nil {
		return err
	}
	if *ppmPath != "" {
		err := ckpt.WriteFileAtomic(*ppmPath, func(w io.Writer) error {
			return render.PPM(w, st.Model.Grid, o.Temps[st.ProcMetalLayer], 16)
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *ppmPath)
	}
	return nil
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	schemeName := fs.String("scheme", "base", "scheme: base|bank|banke|isoCount|prior")
	app := fs.String("app", "", "application to run (default lu-nas)")
	threads := fs.Int("threads", 0, "threads (default: all cores)")
	rates := fs.String("rates", "", "comma-separated sensor dropout rates (default 0,0.001,0.01,0.05)")
	seeds := fs.Int("seeds", 0, "fault seeds per rate (default 25)")
	steps := fs.Int("steps", 0, "control intervals per run (default 240)")
	period := fs.Float64("period", 0, "control period in ms (default 10)")
	guard := fs.Float64("guard", -1, "guard band in °C (default 3)")
	grid := fs.Int("grid", 32, "thermal grid resolution (NxN)")
	instr := fs.Int("instr", 0, "per-thread instruction budget (0 = profile default)")
	workers := fs.Int("workers", 0, "concurrent (rate, seed) runs (0 = all CPUs, 1 = serial)")
	quick := fs.Bool("quick", false, "reduced sweep for smoke testing")
	csvPath := fs.String("csv", "", "also write the table as CSV to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fo := exp.DefaultFaultOptions()
	o := exp.DefaultOptions()
	if *quick {
		fo = exp.QuickFaultOptions()
		o = exp.QuickOptions()
	}
	o.GridRows, o.GridCols = *grid, *grid
	o.Instructions = *instr
	o.Workers = *workers
	kind, err := config.BuildScheme(*schemeName)
	if err != nil {
		return err
	}
	fo.Scheme = kind
	if *app != "" {
		fo.App = *app
	}
	if *threads > 0 {
		fo.Threads = *threads
	}
	if *rates != "" {
		fo.DropoutRates = nil
		for _, s := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v < 0 || v > 1 {
				return fmt.Errorf("bad dropout rate %q", s)
			}
			fo.DropoutRates = append(fo.DropoutRates, v)
		}
	}
	if *seeds > 0 {
		fo.Seeds = *seeds
	}
	if *steps > 0 {
		fo.Steps = *steps
	}
	if *period > 0 {
		fo.PeriodMs = *period
	}
	if *guard >= 0 {
		fo.GuardC = *guard
	}
	r, err := exp.NewRunner(o)
	if err != nil {
		return err
	}
	_, t, err := r.FaultSweep(context.Background(), fo)
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if *csvPath != "" {
		if err := ckpt.WriteFileAtomic(*csvPath, t.CSV); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	app := fs.String("app", "lu-nas", "application profile to record")
	thread := fs.Int("thread", 0, "thread id (seeds the stream)")
	n := fs.Int("n", 100000, "instructions to record")
	out := fs.String("o", "", "output path (default stdout)")
	obsAddr := fs.String("obs", "", "fetch the solve-trace ring from a running xylem's metrics address instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *obsAddr != "" {
		if *out == "" {
			return fetchTrace(*obsAddr, os.Stdout)
		}
		return ckpt.WriteFileAtomic(*out, func(w io.Writer) error {
			return fetchTrace(*obsAddr, w)
		})
	}
	p, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	write := func(w io.Writer) error {
		fmt.Fprintf(w, "# xylem trace: app=%s thread=%d n=%d\n", *app, *thread, *n)
		return workload.WriteTrace(w, workload.NewTrace(p, *thread), *n)
	}
	if *out == "" {
		return write(os.Stdout)
	}
	if err := ckpt.WriteFileAtomic(*out, write); err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s\n", *n, *out)
	return nil
}

func cmdSchemes() error {
	proc, err := floorplan.BuildProcDie(floorplan.DefaultProcConfig())
	if err != nil {
		return err
	}
	_, sg, err := floorplan.BuildDRAMSlice(floorplan.DefaultDRAMConfig())
	if err != nil {
		return err
	}
	fmt.Println("Table 2: Xylem schemes")
	fmt.Printf("%-10s %-6s %-8s %s\n", "scheme", "TTSVs", "shorted", "area overhead")
	for _, k := range stack.AllSchemes {
		s, err := stack.BuildScheme(k, stack.DefaultTTSVSpec(), sg, proc)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-6d %-8v %.2f%%\n",
			k, s.TTSVCount(), s.Shorted, s.AreaOverhead(64e-6)*100)
	}
	return nil
}

func cmdFloorplan() error {
	proc, err := floorplan.BuildProcDie(floorplan.DefaultProcConfig())
	if err != nil {
		return err
	}
	dram, _, err := floorplan.BuildDRAMSlice(floorplan.DefaultDRAMConfig())
	if err != nil {
		return err
	}
	for _, fp := range []*floorplan.Floorplan{proc, dram} {
		fmt.Printf("%s: %.1f x %.1f mm, %d blocks\n",
			fp.Name, fp.Width/geom.Millimetre, fp.Height/geom.Millimetre, len(fp.Blocks))
		for _, b := range fp.Blocks {
			fmt.Printf("  %-14s %-12s core=%-2d %s\n", b.Name, b.Kind, b.Core, b.Rect)
		}
	}
	return nil
}
