package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"github.com/xylem-sim/xylem/internal/ckpt"
)

// profileStop, when non-nil, finishes profiling: it stops the CPU
// profile and/or writes the heap profile. main runs it after the
// subcommand returns, success or failure.
var profileStop func() error

// startProfiles begins CPU profiling and/or arranges a heap snapshot at
// exit, per the -cpuprofile/-memprofile flags. Empty paths are no-ops.
//
// Both profiles reach their destination atomically. The heap snapshot
// is rendered at stop time, so it goes straight through
// ckpt.WriteFileAtomic; the CPU profile must stream while the command
// runs, so it streams into a temp file in the destination directory and
// is fsync+renamed into place at stop — a crash mid-run leaves only the
// temp file, never a truncated profile under the requested name.
func startProfiles(cpuPath, memPath string) error {
	if cpuPath == "" && memPath == "" {
		return nil
	}
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.CreateTemp(filepath.Dir(cpuPath), "."+filepath.Base(cpuPath)+".tmp-*")
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		cpuFile = f
	}
	profileStop = func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			tmpName := cpuFile.Name()
			if err := cpuFile.Sync(); err != nil {
				cpuFile.Close()
				os.Remove(tmpName)
				return err
			}
			if err := cpuFile.Close(); err != nil {
				os.Remove(tmpName)
				return err
			}
			if err := os.Rename(tmpName, cpuPath); err != nil {
				os.Remove(tmpName)
				return err
			}
			fmt.Fprintf(os.Stderr, "xylem: wrote CPU profile to %s\n", cpuPath)
		}
		if memPath != "" {
			runtime.GC() // flush garbage so the snapshot shows live heap
			if err := ckpt.WriteFileAtomic(memPath, func(w io.Writer) error {
				return pprof.Lookup("heap").WriteTo(w, 0)
			}); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "xylem: wrote heap profile to %s\n", memPath)
		}
		return nil
	}
	return nil
}

// stopProfiles runs the pending profile finisher, if any.
func stopProfiles() {
	if profileStop == nil {
		return
	}
	if err := profileStop(); err != nil {
		fmt.Fprintln(os.Stderr, "xylem: profile:", err)
	}
	profileStop = nil
}
