package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileStop, when non-nil, finishes profiling: it stops the CPU
// profile and/or writes the heap profile. main runs it after the
// subcommand returns, success or failure.
var profileStop func() error

// startProfiles begins CPU profiling and/or arranges a heap snapshot at
// exit, per the -cpuprofile/-memprofile flags. Empty paths are no-ops.
func startProfiles(cpuPath, memPath string) error {
	if cpuPath == "" && memPath == "" {
		return nil
	}
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
	}
	profileStop = func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "xylem: wrote CPU profile to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // flush garbage so the snapshot shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "xylem: wrote heap profile to %s\n", memPath)
		}
		return nil
	}
	return nil
}

// stopProfiles runs the pending profile finisher, if any.
func stopProfiles() {
	if profileStop == nil {
		return
	}
	if err := profileStop(); err != nil {
		fmt.Fprintln(os.Stderr, "xylem: profile:", err)
	}
	profileStop = nil
}
