package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/xylem-sim/xylem/internal/exp"
	"github.com/xylem-sim/xylem/internal/obs"
)

// metricsServer is the process-wide `-metrics-addr` listener, closed by
// stopMetrics at exit. All announcements go to stderr so stdout carries
// exactly the same table bytes with metrics on or off.
var metricsServer *obs.Server

// startMetrics starts the opt-in metrics endpoint and returns the
// registry to wire through exp.Options.Obs. addr "" means disabled.
func startMetrics(addr string) (*obs.Registry, error) {
	if addr == "" {
		return nil, nil
	}
	reg := obs.New()
	srv, err := obs.Serve(addr, reg)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	metricsServer = srv
	fmt.Fprintf(os.Stderr, "xylem: serving metrics on http://%s/metrics (also /metrics.json, /trace.json)\n", srv.Addr)
	return reg, nil
}

// stopMetrics shuts the metrics listener down gracefully, if one was
// started: an in-flight scrape at process exit finishes instead of
// being cut mid-response.
func stopMetrics() {
	if metricsServer != nil {
		_ = metricsServer.Shutdown()
		metricsServer = nil
	}
}

// fetchTrace pulls /trace.json from a running xylem process's metrics
// endpoint and pretty-prints the retained span events.
func fetchTrace(base string, w io.Writer) error {
	url := strings.TrimSuffix(base, "/")
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url + "/trace.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace endpoint: %s", resp.Status)
	}
	var dump obs.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return fmt.Errorf("trace endpoint: %w", err)
	}
	fmt.Fprintf(w, "# %d events recorded, %d retained\n", dump.Total, len(dump.Events))
	for _, ev := range dump.Events {
		fmt.Fprintf(w, "%8d  %-24s %12.3fms", ev.Seq, ev.Name, float64(ev.DurNs)/1e6)
		for _, a := range ev.Attrs {
			fmt.Fprintf(w, "  %s=%g", a.Key, a.Val)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// cmdObsSmoke is the CI gate for the observability layer: it runs the
// same figure twice — once bare, once with a registry attached and
// served over HTTP — scrapes the endpoint while results are fresh, and
// fails unless (a) the two tables are byte-identical and (b) the scrape
// actually carried solver metrics and trace spans. Everything runs
// in-process; no external tools needed.
func cmdObsSmoke(args []string) error {
	fs := flag.NewFlagSet("obs-smoke", flag.ContinueOnError)
	id := fs.String("id", "7", "figure id to exercise (see `xylem figure`)")
	c := optFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, err := c.options()
	if err != nil {
		return err
	}
	// The smoke test manages its own registry; the baseline run must be
	// genuinely bare even if -metrics-addr was passed.
	o.Obs = nil

	render := func(o exp.Options) (string, error) {
		r, err := exp.NewRunner(o)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		tableOut = &b
		defer func() { tableOut = os.Stdout }()
		if err := runFigureTable(r, *id); err != nil {
			return "", err
		}
		return b.String(), nil
	}

	bare, err := render(o)
	if err != nil {
		return err
	}

	wired := o
	wired.Obs = obs.New()
	srv, err := obs.Serve("127.0.0.1:0", wired.Obs)
	if err != nil {
		return err
	}
	defer srv.Close()
	observed, err := render(wired)
	if err != nil {
		return err
	}

	if bare != observed {
		return fmt.Errorf("obs-smoke: figure %s table differs with metrics attached (%d vs %d bytes)",
			*id, len(bare), len(observed))
	}

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get("http://" + srv.Addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	prom, err := get("/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{"xylem_thermal_solves_total", "xylem_perf_solves_total", "xylem_exp_points_total"} {
		if !strings.Contains(string(prom), want) {
			return fmt.Errorf("obs-smoke: scrape missing %s", want)
		}
	}
	jsonBody, err := get("/metrics.json")
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		return fmt.Errorf("obs-smoke: /metrics.json: %w", err)
	}
	nMetrics := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
	traceBody, err := get("/trace.json")
	if err != nil {
		return err
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(traceBody, &dump); err != nil {
		return fmt.Errorf("obs-smoke: /trace.json: %w", err)
	}
	if dump.Total == 0 {
		return fmt.Errorf("obs-smoke: no trace spans recorded")
	}
	fmt.Printf("obs-smoke: figure %s byte-identical with metrics on/off (%d bytes); %d metrics, %d trace events\n",
		*id, len(bare), nMetrics, dump.Total)
	return nil
}
